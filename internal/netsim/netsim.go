// Package netsim ties the simulation substrates together into a
// message-passing MANET: mobility supplies positions, radio derives the
// unit-disk connectivity snapshot, churn and energy gate which nodes are
// usable, and this package delivers protocol messages across the resulting
// time-varying multi-hop topology.
//
// Two delivery primitives cover everything the paper's protocols need:
//
//   - Flood: TTL-scoped flooding with duplicate suppression — the paper's
//     INVALIDATION broadcast, the baselines' IR and poll floods, and the
//     expanding-ring POLL/DATA_REQUEST searches.
//   - Unicast: hop-by-hop forwarding along BFS shortest paths, with the
//     next hop re-evaluated at every relay on the then-current topology —
//     UPDATE, APPLY, POLL_ACK and the other point-to-point messages.
//
// Traffic is accounted per link-level transmission (one per forwarding
// node), the unit in which the paper's Fig 7/9(a) report network traffic.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/energy"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/radio"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// PositionSource supplies node positions at a virtual time. Production
// code passes *mobility.Field; tests pass fixed layouts to pin topologies.
type PositionSource interface {
	Len() int
	PositionsAt(t time.Duration, dst []geo.Point) []geo.Point
}

// Meta carries delivery metadata to receivers.
type Meta struct {
	// Hops is the number of link-level hops the message traversed.
	Hops int
	// At is the virtual delivery time.
	At time.Duration
	// SentAt is the virtual time the message entered the network at its
	// origin, so tracers can account end-to-end delivery latency
	// (At - SentAt) per message. For DSR-routed unicasts it is the
	// original send time, including any route-discovery wait.
	SentAt time.Duration
	// Flood reports whether the message arrived via flooding.
	Flood bool
	// FloodID identifies which flood delivered the message (1, 2, … in
	// origination order; 0 for unicasts), letting tracers correlate the
	// fan-out of one broadcast across its deliveries.
	FloodID uint64
}

// Receiver handles a message delivered to a node. Receivers run inside the
// simulation loop and may send messages and schedule events, but must not
// block.
type Receiver func(k *sim.Kernel, node int, msg protocol.Message, meta Meta)

// Tracer observes every message delivery, before the receiver runs. Used
// by the protocol trace tool and by tests that assert on message flows.
type Tracer func(at time.Duration, node int, msg protocol.Message, meta Meta)

// Perturbation is what a schedule perturber does to one final delivery:
// suppress it, delay it, or deliver both an on-time and a delayed copy.
// The zero value leaves the delivery untouched.
type Perturbation struct {
	// Delay postpones the delivery by this much virtual time (with Dup
	// set, it is the duplicate copy that is delayed).
	Delay time.Duration
	// Dup delivers the message twice: once on schedule, once after Delay.
	Dup bool
	// Drop suppresses the delivery entirely, recorded as a loss drop.
	Drop bool
}

// Perturber inspects every final delivery — unicast, flood and local
// alike, just before the tracer and receiver would run — and returns the
// schedule perturbation to apply. The conformance fuzzer uses it to
// explore adversarial message interleavings. Implementations must be
// deterministic and must not draw from kernel streams (the fuzzer
// precomputes its perturbation plans), so runs with a nil perturber stay
// byte-identical to runs built before the hook existed. The tracer and
// receiver observe only what survives perturbation, at its actual
// delivery time.
type Perturber func(node int, msg protocol.Message, meta Meta) Perturbation

// LossModel replaces the uniform per-reception loss draw when installed
// with SetLossModel — e.g. a two-state Gilbert–Elliott chain producing
// correlated loss bursts. Implementations draw from their own kernel
// stream so the network's jitter/loss streams are untouched and runs
// without a model installed stay byte-identical.
type LossModel interface {
	// Lost draws whether one link-level reception is lost.
	Lost() bool
}

// LinkFilter reports whether the link from -> to is currently severed by
// a fault plane (network partition). Consulted per link-level reception,
// after the receiver-up check and before the loss draw, so installing a
// filter changes no RNG draw ordering for uncut links.
type LinkFilter func(from, to int) bool

// Config parameterises the network layer.
type Config struct {
	// CommRange is the radio range in metres (Table 1: 250 m).
	CommRange float64
	// HopBase is the fixed per-hop forwarding delay.
	HopBase time.Duration
	// BandwidthBps is the link bandwidth in bits per second; it converts
	// message sizes into transmission delay (802.11b-era 2 Mbps default).
	BandwidthBps float64
	// JitterMax is the maximum uniform random extra delay per hop,
	// modelling MAC contention.
	JitterMax time.Duration
	// TopologyRefresh is how often the connectivity snapshot is rebuilt
	// from node positions.
	TopologyRefresh time.Duration
	// MaxRouteHops bounds hop-by-hop unicast forwarding so routing loops
	// caused by mid-flight topology changes terminate.
	MaxRouteHops int
	// Routing selects the unicast routing layer: RoutingOracle (default;
	// idealised zero-overhead shortest paths) or RoutingDSR (on-demand
	// source routing with RREQ/RREP/RERR overhead, as the paper's
	// GloMoSim testbed used).
	Routing RoutingMode
	// LossRate is the probability that any single link-level reception
	// fails (the "higher packet loss rate" of the paper's §1 problem
	// statement). Zero (the default) models a clean channel; protocols
	// must survive non-zero values through their own timers.
	LossRate float64
	// SerializeTx, when set, gives each node a single radio: frames
	// queue behind one another for their transmission time
	// (size/bandwidth), so bursts experience MAC-style queueing delay.
	// Off by default: the paper-reproduction figures use the idealised
	// parallel radio, and the A10 ablation quantifies the difference.
	SerializeTx bool
	// DisableRouteCache turns off the per-snapshot route-table
	// memoization in the radio layer, reverting every NextHop to the
	// original per-call BFS. Routing decisions are identical either way;
	// the switch exists so the determinism regression tests can compare
	// the memoized hot path against the reference path.
	DisableRouteCache bool
	// Kinetic switches topology maintenance from per-snapshot full
	// rebuilds to the event-driven kinetic plane (kinetic.go): link
	// make/break times are predicted from the motion legs, scheduled as
	// kernel events, and snapshots are produced by repacking the
	// incrementally maintained adjacency plus repairing route tables
	// in place. Requires the position field to implement KineticSource
	// (*mobility.Field does). Snapshots are byte-identical to the
	// full-rebuild path; only the cost model changes.
	Kinetic bool
	// RouteTableCap bounds how many per-destination route tables the
	// snapshot keeps alive (0 = unlimited, the historical behaviour).
	// Large kinetic runs set a cap so persistent tables stay O(cap·n)
	// instead of O(n²).
	RouteTableCap int
	// LazyChurnRefresh stops churn flips from invalidating the cached
	// topology snapshot: down/up transitions are only folded into the
	// adjacency at the next TopologyRefresh epoch. Per-hop forwarding
	// still checks Up() live, so a downed node never relays or receives
	// — only route *choice* sees churn at epoch granularity. Scale runs
	// (100k nodes, ~2k flips/s) enable this; at that rate per-flip
	// resampling costs more than the whole rest of the simulation.
	LazyChurnRefresh bool
}

// DefaultConfig returns the network parameters used across the paper's
// experiments.
func DefaultConfig() Config {
	return Config{
		CommRange:       250,
		HopBase:         2 * time.Millisecond,
		BandwidthBps:    2_000_000,
		JitterMax:       time.Millisecond,
		TopologyRefresh: time.Second,
		MaxRouteHops:    32,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CommRange <= 0 {
		return fmt.Errorf("netsim: non-positive range %g", c.CommRange)
	}
	if c.HopBase <= 0 {
		return fmt.Errorf("netsim: non-positive hop base %v", c.HopBase)
	}
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth %g", c.BandwidthBps)
	}
	if c.JitterMax < 0 {
		return fmt.Errorf("netsim: negative jitter %v", c.JitterMax)
	}
	if c.TopologyRefresh <= 0 {
		return fmt.Errorf("netsim: non-positive topology refresh %v", c.TopologyRefresh)
	}
	if c.MaxRouteHops <= 0 {
		return fmt.Errorf("netsim: non-positive max route hops %d", c.MaxRouteHops)
	}
	switch c.Routing {
	case routingUnset, RoutingOracle, RoutingDSR:
	default:
		return fmt.Errorf("netsim: unknown routing mode %d", c.Routing)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("netsim: loss rate %g outside [0,1)", c.LossRate)
	}
	if c.RouteTableCap < 0 {
		return fmt.Errorf("netsim: negative route table cap %d", c.RouteTableCap)
	}
	return nil
}

// Network is the message-passing MANET.
type Network struct {
	cfg       Config
	k         *sim.Kernel
	field     PositionSource
	churn     *churn.Process
	batteries []*energy.Battery
	traffic   *stats.Traffic
	receivers []Receiver
	tracer    Tracer
	trace     *ctrace.Collector
	jitter    *rand.Rand
	loss      *rand.Rand

	builder    *radio.GraphBuilder
	cached     *radio.Graph
	cachedAt   time.Duration
	cacheValid bool

	// kin is the kinetic topology plane (nil unless cfg.Kinetic); topo
	// accumulates topology-maintenance counters in both modes. diffBuf
	// is the reused CSR edge-diff scratch between samples.
	kin     *kinetic
	topo    TopologyStats
	diffBuf []radio.EdgeDiff

	// activity counts link-level sends plus receptions per node —
	// including pure forwarding work — as the radio-level evidence of a
	// node's participation in the network.
	activity []uint64

	// txBusy is each node's radio-reservation horizon under SerializeTx.
	txBusy []time.Duration

	// downBuf and posBuf are retained between topology rebuilds and
	// position queries so the per-event hot path does not allocate.
	downBuf []bool
	posBuf  []geo.Point

	// nextFlood numbers floods in origination order; the current value
	// rides on every flood delivery as Meta.FloodID.
	nextFlood uint64

	// floodPool recycles per-flood duplicate-suppression state. A flood's
	// state returns to the pool once its last in-flight reception fires.
	floodPool []*floodState

	// rebuilds counts topology snapshot rebuilds (cache misses).
	rebuilds uint64

	// dsr holds per-node routing state when cfg.Routing is RoutingDSR.
	dsr []*dsrNode

	// Fault-plane hooks. All nil/zero in normal runs: the hot paths pay
	// one nil check and draw no extra randomness, so seeded runs without
	// faults stay byte-identical to builds without the plane.
	lossModel  LossModel
	linkFilter LinkFilter
	// dupProb duplicates a unicast's final delivery with this
	// probability; reorderMax adds up to this much uniform extra delay
	// before a unicast's final delivery, letting later sends overtake
	// earlier ones. Both draw from faultRand, a dedicated stream.
	dupProb    float64
	reorderMax time.Duration
	faultRand  *rand.Rand

	// perturber is the conformance harness's schedule-perturbation hook;
	// nil (the default) costs one pointer check per delivery.
	perturber Perturber
}

// New constructs the network. churnProc and batteries are optional (nil
// means "no churn" / "no energy accounting"); field and kernel are not.
func New(cfg Config, k *sim.Kernel, field PositionSource, churnProc *churn.Process, batteries []*energy.Battery, traffic *stats.Traffic) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k == nil || field == nil {
		return nil, fmt.Errorf("netsim: nil kernel or field")
	}
	if traffic == nil {
		traffic = stats.NewTraffic()
	}
	if batteries != nil && len(batteries) != field.Len() {
		return nil, fmt.Errorf("netsim: %d batteries for %d nodes", len(batteries), field.Len())
	}
	n := &Network{
		cfg:       cfg,
		k:         k,
		field:     field,
		churn:     churnProc,
		batteries: batteries,
		traffic:   traffic,
		receivers: make([]Receiver, field.Len()),
		jitter:    k.Stream("netsim.jitter"),
		loss:      k.Stream("netsim.loss"),
		activity:  make([]uint64, field.Len()),
		txBusy:    make([]time.Duration, field.Len()),
		builder:   radio.NewGraphBuilder(),
	}
	if cfg.Routing == routingUnset {
		n.cfg.Routing = RoutingOracle
	}
	if n.cfg.Routing == RoutingDSR {
		n.initDSR()
	}
	if cfg.Kinetic {
		src, ok := field.(KineticSource)
		if !ok {
			return nil, fmt.Errorf("netsim: kinetic topology needs a KineticSource field, got %T", field)
		}
		n.kin = newKinetic(src, cfg.CommRange, &n.topo)
	}
	if churnProc != nil && !cfg.LazyChurnRefresh {
		// Any connectivity flip invalidates the cached topology snapshot
		// immediately, so messages in the same refresh window observe it.
		churnProc.Subscribe(func(int, churn.State, time.Duration) { n.cacheValid = false })
	}
	return n, nil
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.receivers) }

// Traffic returns the traffic ledger.
func (n *Network) Traffic() *stats.Traffic { return n.traffic }

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// SetReceiver installs node's message handler (replacing any previous).
func (n *Network) SetReceiver(node int, r Receiver) error {
	if node < 0 || node >= len(n.receivers) {
		return fmt.Errorf("netsim: node %d out of range", node)
	}
	n.receivers[node] = r
	return nil
}

// Up reports whether a node is currently usable: connected per churn and
// not battery-depleted.
func (n *Network) Up(node int) bool {
	if node < 0 || node >= len(n.receivers) {
		return false
	}
	if n.churn != nil && !n.churn.Connected(node) {
		return false
	}
	if n.batteries != nil && n.batteries[node].Depleted(n.k.Now()) {
		return false
	}
	return true
}

// Graph returns the connectivity snapshot for the current virtual time,
// rebuilding it when the topology-refresh window rolled over or churn
// invalidated it. Rebuilds reuse the network's GraphBuilder, so the
// returned snapshot is only valid until the next rebuild — callers fetch
// it fresh per event handler and must not retain it across events (no
// caller does; routing re-reads the topology at every hop by design).
func (n *Network) Graph() *radio.Graph {
	now := n.k.Now()
	epoch := now.Truncate(n.cfg.TopologyRefresh)
	if n.cacheValid && n.cachedAt == epoch {
		return n.cached
	}
	n.posBuf = n.field.PositionsAt(now, n.posBuf)
	if cap(n.downBuf) < n.field.Len() {
		n.downBuf = make([]bool, n.field.Len())
	}
	down := n.downBuf[:n.field.Len()]
	for i := range down {
		down[i] = !n.Up(i)
	}
	var g *radio.Graph
	var err error
	if n.kin != nil {
		g, err = n.kineticSample(now, down, uint64(epoch))
	} else {
		g, err = n.builder.Build(n.posBuf, down, n.cfg.CommRange, uint64(epoch))
		n.topo.FullRebuilds++
		n.topo.RouteFullResets++
	}
	if err != nil {
		// Config was validated at construction; only a programming error
		// reaches here. Fail loudly rather than route on a stale graph.
		panic(fmt.Sprintf("netsim: graph rebuild failed: %v", err))
	}
	g.SetRouteCache(!n.cfg.DisableRouteCache)
	g.SetRouteTableCap(n.cfg.RouteTableCap)
	n.rebuilds++
	n.cached = g
	n.cachedAt = epoch
	n.cacheValid = true
	return g
}

// Reachable reports whether a link-layer path currently exists between
// the two nodes — the MAC-layer disconnection check of §4.5. It reads
// the same epoch-cached topology snapshot as routing, so calling it
// draws no randomness and perturbs nothing.
func (n *Network) Reachable(from, to int) bool {
	return n.Graph().Hops(from, to) != radio.Unreachable
}

// Rebuilds returns how many times the topology snapshot has been rebuilt —
// the cache-miss count behind Graph(). Tests use it to assert refresh and
// invalidation behaviour without relying on snapshot identity (the builder
// reuses one graph in place).
func (n *Network) Rebuilds() uint64 { return n.rebuilds }

// TopologyStats returns the topology-maintenance counters: full rebuilds
// vs kinetic incremental samples, link make/break events, certificate
// checks, Verlet rebins, and route tables repaired vs dropped vs reset.
func (n *Network) TopologyStats() TopologyStats { return n.topo }

// kineticSample produces the snapshot for a sample time via the kinetic
// plane: drain every due certificate with the exact sampled positions,
// convert the window's link flips plus the down-mask delta into CSR edge
// diffs, repack the CSR from the maintained adjacency rows, and repair
// the surviving route tables against exactly those diffs. The first call
// performs the one full build the plane ever does.
func (n *Network) kineticSample(now time.Duration, down []bool, stamp uint64) (*radio.Graph, error) {
	kn := n.kin
	row := func(i int) []int32 { return kn.linkedAdj[i] }
	if !kn.inited {
		kn.init(now, n.posBuf)
		copy(kn.downPrev, down)
		g, err := n.builder.RebuildFromRows(kn.n, row, down, n.cfg.CommRange, stamp)
		kn.scheduleDriver(n.k)
		return g, err
	}
	kn.drainUntil(now, n.posBuf)
	n.diffBuf = kn.csrDiffs(down, n.diffBuf)
	g, err := n.builder.RebuildFromRows(kn.n, row, down, n.cfg.CommRange, stamp)
	if err != nil {
		return nil, err
	}
	repaired, dropped := g.PatchRoutes(n.diffBuf)
	n.topo.RoutesRepaired += uint64(repaired)
	n.topo.RoutesDropped += uint64(dropped)
	n.topo.KineticSamples++
	kn.scheduleDriver(n.k)
	return g, nil
}

// txDelay reserves node's radio for one frame and returns the delay until
// the frame lands one hop away: the plain hop delay under the idealised
// parallel radio, plus queueing behind earlier frames under SerializeTx.
func (n *Network) txDelay(node, bytes int) time.Duration {
	d := n.hopDelay(bytes)
	if !n.cfg.SerializeTx {
		return d
	}
	service := time.Duration(float64(bytes*8) / n.cfg.BandwidthBps * float64(time.Second))
	start := n.k.Now()
	if n.txBusy[node] > start {
		start = n.txBusy[node]
	}
	n.txBusy[node] = start + service
	return (start - n.k.Now()) + d
}

// SetLossModel installs (or with nil removes) a loss model that replaces
// the uniform LossRate draw. Install during setup, before the kernel
// runs, so every reception of the run sees the same channel.
func (n *Network) SetLossModel(m LossModel) { n.lossModel = m }

// SetLinkFilter installs (or with nil removes) the fault plane's link
// cut predicate.
func (n *Network) SetLinkFilter(f LinkFilter) { n.linkFilter = f }

// SetDeliveryFaults configures unicast duplication and reordering at the
// delivery queue. dupProb in [0,1) duplicates final deliveries;
// reorderMax adds uniform extra delay in [0, reorderMax) before final
// delivery. Both zero (the default) disables the machinery entirely.
func (n *Network) SetDeliveryFaults(dupProb float64, reorderMax time.Duration) error {
	if dupProb < 0 || dupProb >= 1 {
		return fmt.Errorf("netsim: duplication probability %g outside [0,1)", dupProb)
	}
	if reorderMax < 0 {
		return fmt.Errorf("netsim: negative reorder delay %v", reorderMax)
	}
	n.dupProb = dupProb
	n.reorderMax = reorderMax
	if (dupProb > 0 || reorderMax > 0) && n.faultRand == nil {
		n.faultRand = n.k.Stream("netsim.faults")
	}
	return nil
}

// lost draws the per-reception loss event from the installed loss model,
// or from the uniform LossRate channel when none is installed.
func (n *Network) lost() bool {
	if n.lossModel != nil {
		return n.lossModel.Lost()
	}
	return n.cfg.LossRate > 0 && n.loss.Float64() < n.cfg.LossRate
}

// cut reports whether the fault plane severs the link from -> to. No RNG
// draws: safe to consult between the up check and the loss draw.
func (n *Network) cut(from, to int) bool {
	return n.linkFilter != nil && n.linkFilter(from, to)
}

// hopDelay returns the per-hop latency for a message of the given size.
func (n *Network) hopDelay(bytes int) time.Duration {
	txTime := time.Duration(float64(bytes*8) / n.cfg.BandwidthBps * float64(time.Second))
	d := n.cfg.HopBase + txTime
	if n.cfg.JitterMax > 0 {
		d += time.Duration(n.jitter.Int63n(int64(n.cfg.JitterMax)))
	}
	return d
}

func (n *Network) spendTx(node int) {
	n.activity[node]++
	if n.batteries != nil {
		n.batteries[node].SpendTx(n.k.Now())
	}
}

func (n *Network) spendRx(node int) {
	n.activity[node]++
	if n.batteries != nil {
		n.batteries[node].SpendRx(n.k.Now())
	}
}

// Activity returns the cumulative number of link-level transmissions and
// receptions node has performed, including forwarding on behalf of
// others. RPCC's coefficient tracker uses it as accessibility evidence
// (N_a): a node that carries traffic is reachable and responsive.
func (n *Network) Activity(node int) uint64 {
	if node < 0 || node >= len(n.activity) {
		return 0
	}
	return n.activity[node]
}

// SetTracer installs a delivery observer (nil to remove).
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// SetTraceCollector installs (or with nil removes) the causal-trace
// collector. Every delivery of a traced message — one whose sender put a
// trace context on it — records a transit span covering [SentAt, At] and
// re-parents the message's context onto that span before the receiver
// runs, so receiver-side spans chain through the hop that carried the
// message. Untraced messages cost one pointer check.
func (n *Network) SetTraceCollector(c *ctrace.Collector) { n.trace = c }

// SetPerturber installs (or with nil removes) a delivery-schedule
// perturber. Install during setup, before the kernel runs.
func (n *Network) SetPerturber(p Perturber) { n.perturber = p }

// deliver applies any installed schedule perturbation and completes the
// delivery. It is the single choke point every unicast, flood and local
// delivery funnels through, so a perturber sees the whole message
// schedule.
func (n *Network) deliver(node int, msg protocol.Message, meta Meta) {
	if n.perturber != nil {
		p := n.perturber(node, msg, meta)
		switch {
		case p.Drop:
			n.traffic.RecordDropped(msg.Kind, stats.DropLoss)
			return
		case p.Dup:
			n.deliverFinal(node, msg, meta)
			n.deliverDelayed(node, msg, meta, p.Delay)
			return
		case p.Delay > 0:
			n.deliverDelayed(node, msg, meta, p.Delay)
			return
		}
	}
	n.deliverFinal(node, msg, meta)
}

// deliverDelayed re-schedules a perturbed delivery, re-checking that the
// destination is still up at fire time (as the delivery-fault delay path
// does) and stamping the actual delivery time into the meta.
func (n *Network) deliverDelayed(node int, msg protocol.Message, meta Meta, d time.Duration) {
	if d <= 0 {
		n.deliverFinal(node, msg, meta)
		return
	}
	n.k.After(d, "netsim.perturb", func(*sim.Kernel) {
		if !n.Up(node) {
			n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
			return
		}
		meta.At = n.k.Now()
		n.deliverFinal(node, msg, meta)
	})
}

// deliverFinal completes a delivery: traffic ledger, tracer, trace span,
// receiver.
func (n *Network) deliverFinal(node int, msg protocol.Message, meta Meta) {
	n.traffic.RecordDelivered(msg.Kind)
	if n.tracer != nil {
		n.tracer(n.k.Now(), node, msg, meta)
	}
	if n.trace != nil && msg.Trace.TraceID != 0 {
		msg.Trace = n.trace.Emit(msg.Trace, node, ctrace.PhaseTransit,
			msg.Kind.String(), meta.SentAt.Nanoseconds(), meta.At.Nanoseconds())
	}
	if r := n.receivers[node]; r != nil {
		r(n.k, node, msg, meta)
	}
}

// Unicast routes msg from -> to hop by hop along shortest paths on the
// current topology. Delivery is best-effort: partitions, churn mid-flight,
// or the hop bound drop the message (recorded in the traffic ledger), and
// the caller's protocol timers provide recovery — exactly the failure
// model the paper's §4.5 addresses.
func (n *Network) Unicast(from, to int, msg protocol.Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	if from < 0 || from >= n.Len() || to < 0 || to >= n.Len() {
		return fmt.Errorf("netsim: unicast %d->%d out of range", from, to)
	}
	n.traffic.RecordOriginated(msg.Kind)
	if from == to {
		// Local delivery is free: no radio transmission happens.
		now := n.k.Now()
		n.deliver(to, msg, Meta{Hops: 0, At: now, SentAt: now})
		return nil
	}
	if !n.Up(from) {
		n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
		return nil
	}
	if n.cfg.Routing == RoutingDSR {
		n.dsrUnicast(from, to, msg)
		return nil
	}
	n.forward(from, to, msg, 0, n.k.Now())
	return nil
}

// forward transmits one hop and schedules the next.
func (n *Network) forward(cur, dst int, msg protocol.Message, hops int, sentAt time.Duration) {
	if hops >= n.cfg.MaxRouteHops {
		n.traffic.RecordDropped(msg.Kind, stats.DropNoRoute)
		return
	}
	g := n.Graph()
	next := g.NextHop(cur, dst)
	if next == radio.Unreachable {
		n.traffic.RecordDropped(msg.Kind, stats.DropNoRoute)
		return
	}
	n.traffic.RecordTx(msg.Kind, msg.Size())
	n.spendTx(cur)
	n.k.After(n.txDelay(cur, msg.Size()), "netsim.hop", func(*sim.Kernel) {
		switch {
		case !n.Up(next):
			// Receiver flipped down while the frame was in the air.
			n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
		case n.cut(cur, next):
			n.traffic.RecordDropped(msg.Kind, stats.DropPartition)
		case n.lost():
			n.traffic.RecordDropped(msg.Kind, stats.DropLoss)
		case next == dst:
			n.spendRx(next)
			n.deliverUnicast(dst, msg, hops+1, sentAt)
		default:
			n.spendRx(next)
			n.forward(next, dst, msg, hops+1, sentAt)
		}
	})
}

// deliverUnicast completes a unicast's final hop, applying the delivery
// fault knobs (duplication, reordering) when configured. The common path
// — no faults — delivers inline, exactly as before the knobs existed.
func (n *Network) deliverUnicast(dst int, msg protocol.Message, hops int, sentAt time.Duration) {
	if n.dupProb <= 0 && n.reorderMax <= 0 {
		n.deliver(dst, msg, Meta{Hops: hops, At: n.k.Now(), SentAt: sentAt})
		return
	}
	copies := 1
	if n.dupProb > 0 && n.faultRand.Float64() < n.dupProb {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		var extra time.Duration
		if n.reorderMax > 0 {
			extra = time.Duration(n.faultRand.Int63n(int64(n.reorderMax)))
		}
		if extra == 0 {
			n.deliver(dst, msg, Meta{Hops: hops, At: n.k.Now(), SentAt: sentAt})
			continue
		}
		n.k.After(extra, "netsim.fault.delay", func(*sim.Kernel) {
			if !n.Up(dst) {
				n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
				return
			}
			n.deliver(dst, msg, Meta{Hops: hops, At: n.k.Now(), SentAt: sentAt})
		})
	}
}

// floodState is the per-flood bookkeeping: the duplicate-suppression
// bitmap, the flood id, and a count of in-flight receptions. When the
// last scheduled reception fires the state returns to the network's pool,
// so steady-state flooding reallocates nothing.
type floodState struct {
	visited []bool
	id      uint64
	pending int
	// sentAt is the flood's origination time, carried to every delivery's
	// Meta.SentAt.
	sentAt time.Duration
}

// acquireFlood pops a cleared flood state from the pool (or allocates).
func (n *Network) acquireFlood() *floodState {
	if last := len(n.floodPool) - 1; last >= 0 {
		st := n.floodPool[last]
		n.floodPool[last] = nil
		n.floodPool = n.floodPool[:last]
		return st
	}
	return &floodState{visited: make([]bool, n.Len())}
}

// releaseFlood clears and pools a finished flood's state.
func (n *Network) releaseFlood(st *floodState) {
	clear(st.visited)
	st.pending = 0
	n.floodPool = append(n.floodPool, st)
}

// Flood broadcasts msg from origin with the given TTL. Every distinct node
// reached within TTL hops receives the message exactly once (duplicate
// rebroadcasts are suppressed, as in standard MANET flooding). The origin
// itself does not receive its own flood. Each forwarding node transmits
// once; receptions are charged to every neighbour hearing a transmission
// for the first time.
func (n *Network) Flood(origin, ttl int, msg protocol.Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	if origin < 0 || origin >= n.Len() {
		return fmt.Errorf("netsim: flood origin %d out of range", origin)
	}
	if ttl <= 0 {
		return fmt.Errorf("netsim: flood TTL %d must be positive", ttl)
	}
	n.traffic.RecordOriginated(msg.Kind)
	if !n.Up(origin) {
		n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
		return nil
	}
	n.nextFlood++
	st := n.acquireFlood()
	st.id = n.nextFlood
	st.sentAt = n.k.Now()
	st.visited[origin] = true
	n.transmitFlood(origin, ttl, msg, st, 0)
	if st.pending == 0 {
		// No neighbour heard the broadcast; the flood is already over.
		n.releaseFlood(st)
	}
	return nil
}

// transmitFlood performs one node's (re)broadcast of a flood.
func (n *Network) transmitFlood(node, ttlLeft int, msg protocol.Message, st *floodState, hops int) {
	if !n.Up(node) {
		return
	}
	g := n.Graph()
	n.traffic.RecordTx(msg.Kind, msg.Size())
	n.spendTx(node)
	delay := n.txDelay(node, msg.Size())
	for _, v := range g.Neighbors(node) {
		if st.visited[v] {
			continue
		}
		st.visited[v] = true
		st.pending++
		v := v
		n.k.After(delay, "netsim.flood", func(*sim.Kernel) {
			switch {
			case !n.Up(v):
				n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
			case n.cut(node, v):
				n.traffic.RecordDropped(msg.Kind, stats.DropPartition)
			case n.lost():
				n.traffic.RecordDropped(msg.Kind, stats.DropLoss)
			default:
				n.spendRx(v)
				n.deliver(v, msg, Meta{Hops: hops + 1, At: n.k.Now(), SentAt: st.sentAt, Flood: true, FloodID: st.id})
				if ttlLeft > 1 {
					n.transmitFlood(v, ttlLeft-1, msg, st, hops+1)
				}
			}
			if st.pending--; st.pending == 0 {
				n.releaseFlood(st)
			}
		})
	}
}
