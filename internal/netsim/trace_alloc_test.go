package netsim

import (
	"testing"

	"github.com/manetlab/rpcc/internal/protocol"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// measureUnicastAllocs reports steady-state allocations per delivered
// unicast on a warmed-up two-node chain.
func measureUnicastAllocs(t *testing.T, msg protocol.Message) float64 {
	t.Helper()
	h := newHarness(t, 2, false)
	// Warm up: first delivery populates the route cache and freelists.
	if err := h.net.Unicast(0, 1, msg); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	h.got = h.got[:0]
	return testing.AllocsPerRun(200, func() {
		if err := h.net.Unicast(0, 1, msg); err != nil {
			t.Fatal(err)
		}
		h.k.Run()
		h.got = h.got[:0]
	})
}

// TestTraceDisabledDeliveryAllocFree pins the "invisible when off" half
// of the tracing contract on the delivery hot path: with no collector
// installed, a message carrying a trace context costs exactly as many
// allocations as an untraced one (the hook is a single nil check), and
// every nil-collector trace call is itself allocation-free. `make
// bench-scale` runs this test before refreshing the scale artefact so
// the committed numbers are never polluted by an accidentally
// allocating hook.
func TestTraceDisabledDeliveryAllocFree(t *testing.T) {
	plain := testMsg(protocol.KindPoll)
	traced := plain
	traced.Trace = protocol.TraceContext{TraceID: 1, SpanID: 2}
	if p, tr := measureUnicastAllocs(t, plain), measureUnicastAllocs(t, traced); tr > p {
		t.Errorf("trace-disabled delivery of a traced message allocates %.2f/op, untraced %.2f/op", tr, p)
	}

	var c *ctrace.Collector
	tc := protocol.TraceContext{TraceID: 1, SpanID: 2}
	if avg := testing.AllocsPerRun(200, func() {
		tc = c.Emit(tc, 0, ctrace.PhaseTransit, "hop", 0, 0)
		c.Finish(tc, 0)
		_ = c.StartTrace(0, 0, ctrace.PhaseQuery, "q")
	}); avg != 0 {
		t.Errorf("nil-collector trace calls allocate %.2f/op, want 0", avg)
	}
}
