package netsim

import (
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// Position returns node's current coordinates — the "GPS reading" a
// location-aided protocol (GPSCE-style, [Lim04] in the paper's related
// work) is assumed to have for free from dedicated hardware.
func (n *Network) Position(node int) geo.Point {
	n.posBuf = n.field.PositionsAt(n.k.Now(), n.posBuf)
	if node < 0 || node >= len(n.posBuf) {
		return geo.Point{}
	}
	return n.posBuf[node]
}

// GeoUnicast forwards msg greedily by geography: each hop hands the
// message to its neighbour closest to the target position, delivering
// when it reaches dst. This is GPSR-style greedy forwarding without the
// perimeter fallback, so a local minimum (a "void" with no neighbour
// closer to the target) drops the message — the real failure mode that
// makes location-aided schemes cheap but lossy under mobility. The
// caller supplies the position it BELIEVES dst is at; a stale belief
// strands the message near the old position.
func (n *Network) GeoUnicast(from, dst int, target geo.Point, msg protocol.Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	if from < 0 || from >= n.Len() || dst < 0 || dst >= n.Len() {
		return errOutOfRange(from, dst)
	}
	n.traffic.RecordOriginated(msg.Kind)
	if from == dst {
		n.deliver(dst, msg, Meta{Hops: 0, At: n.k.Now()})
		return nil
	}
	if !n.Up(from) {
		n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
		return nil
	}
	n.geoForward(from, dst, target, msg, 0)
	return nil
}

func errOutOfRange(from, to int) error {
	return &rangeError{from: from, to: to}
}

// rangeError keeps the hot path free of fmt allocations.
type rangeError struct{ from, to int }

func (e *rangeError) Error() string {
	return "netsim: geo unicast endpoint out of range"
}

// geoForward transmits one greedy hop.
func (n *Network) geoForward(cur, dst int, target geo.Point, msg protocol.Message, hops int) {
	if hops >= n.cfg.MaxRouteHops {
		n.traffic.RecordDropped(msg.Kind, stats.DropNoRoute)
		return
	}
	g := n.Graph()
	// Reuse the retained position buffer; Graph() may have just filled it
	// for the same instant, but positions are pure in (time, node) so a
	// second fill is idempotent and the buffer is free either way.
	n.posBuf = n.field.PositionsAt(n.k.Now(), n.posBuf)
	pts := n.posBuf
	// Direct delivery when the destination is a neighbour.
	next := -1
	if g.Connected(cur, dst) {
		next = dst
	} else {
		// Greedy: strictly closer to the target than we are, else void.
		best := pts[cur].Dist(target)
		for _, v := range g.Neighbors(cur) {
			if d := pts[v].Dist(target); d < best {
				best, next = d, v
			}
		}
	}
	if next < 0 {
		n.traffic.RecordDropped(msg.Kind, stats.DropNoRoute) // local minimum: void
		return
	}
	n.traffic.RecordTx(msg.Kind, msg.Size())
	n.spendTx(cur)
	n.k.After(n.txDelay(cur, msg.Size()), "netsim.geohop", func(*sim.Kernel) {
		switch {
		case !n.Up(next):
			n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
			return
		case n.cut(cur, next):
			n.traffic.RecordDropped(msg.Kind, stats.DropPartition)
			return
		case n.lost():
			n.traffic.RecordDropped(msg.Kind, stats.DropLoss)
			return
		}
		n.spendRx(next)
		if next == dst {
			n.deliver(dst, msg, Meta{Hops: hops + 1, At: n.k.Now()})
			return
		}
		n.geoForward(next, dst, target, msg, hops+1)
	})
}
