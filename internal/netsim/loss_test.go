package netsim

import (
	"testing"

	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

func TestLossRateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = -0.1
	if cfg.Validate() == nil {
		t.Error("negative loss rate accepted")
	}
	cfg.LossRate = 1
	if cfg.Validate() == nil {
		t.Error("loss rate 1 accepted (nothing would ever arrive)")
	}
	cfg.LossRate = 0.3
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLossDeliversEverything(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(1))
	net, err := New(DefaultConfig(), k, chain(4), nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	net.SetReceiver(3, func(*sim.Kernel, int, protocol.Message, Meta) { got++ })
	for i := 0; i < 50; i++ {
		net.Unicast(0, 3, testMsg(protocol.KindPoll))
	}
	k.Run()
	if got != 50 {
		t.Fatalf("delivered %d of 50 on a clean channel", got)
	}
}

func TestLossDropsSomeDeliveries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.2
	k := sim.NewKernel(sim.WithSeed(2))
	net, err := New(cfg, k, chain(4), nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	net.SetReceiver(3, func(*sim.Kernel, int, protocol.Message, Meta) { got++ })
	const sends = 200
	for i := 0; i < sends; i++ {
		net.Unicast(0, 3, testMsg(protocol.KindPoll))
	}
	k.Run()
	// 3 hops, 20% loss per reception: P(delivery) = 0.8^3 = 51.2%.
	if got == sends {
		t.Fatal("lossy channel delivered everything")
	}
	if got < sends/4 || got > sends*3/4 {
		t.Errorf("delivered %d of %d, want roughly half (0.8^3)", got, sends)
	}
	if net.Traffic().Dropped(protocol.KindPoll) == 0 {
		t.Error("losses not recorded as drops")
	}
}

func TestLossAffectsFloodCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.5
	k := sim.NewKernel(sim.WithSeed(3))
	net, err := New(cfg, k, chain(8), nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	reach := make([]int, 8)
	for i := 0; i < 8; i++ {
		i := i
		net.SetReceiver(i, func(*sim.Kernel, int, protocol.Message, Meta) { reach[i]++ })
	}
	const floods = 100
	for i := 0; i < floods; i++ {
		net.Flood(0, 8, testMsg(protocol.KindIR))
	}
	k.Run()
	// With 50% per-hop loss on a chain, far nodes hear far fewer floods
	// than near ones.
	if reach[1] <= reach[7] {
		t.Errorf("loss did not attenuate with distance: 1-hop %d vs 7-hop %d", reach[1], reach[7])
	}
	if reach[7] == floods {
		t.Error("7-hop node heard every flood at 50%% loss")
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int {
		cfg := DefaultConfig()
		cfg.LossRate = 0.3
		k := sim.NewKernel(sim.WithSeed(9))
		net, err := New(cfg, k, chain(5), nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		net.SetReceiver(4, func(*sim.Kernel, int, protocol.Message, Meta) { got++ })
		for i := 0; i < 100; i++ {
			net.Unicast(0, 4, testMsg(protocol.KindPoll))
		}
		k.Run()
		return got
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed lossy runs diverged: %d vs %d", a, b)
	}
}
