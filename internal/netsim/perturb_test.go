package netsim

import (
	"sort"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/protocol"
)

// TestFloodTTLBoundary pins the paper's TTL-scoped flood semantics on a
// line topology: a flood with TTL t must reach every node at most t hops
// from the origin — including the node exactly t hops away — and no node
// beyond. The deepest rebroadcast happens at hop t-1 with one hop of
// budget left, which is precisely the delivery to the hop-t node.
func TestFloodTTLBoundary(t *testing.T) {
	const nodes = 9 // chain 0..8: node i sits exactly i hops from node 0
	tests := []struct {
		name string
		ttl  int
		want []int // node ids that must receive the flood, exactly
	}{
		{"ttl1", 1, []int{1}},
		{"ttl2", 2, []int{1, 2}},
		{"ttl equals farthest hop", 8, []int{1, 2, 3, 4, 5, 6, 7, 8}},
		{"ttl beyond farthest hop", 9, []int{1, 2, 3, 4, 5, 6, 7, 8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := newHarness(t, nodes, false)
			if err := h.net.Flood(0, tt.ttl, testMsg(protocol.KindInvalidation)); err != nil {
				t.Fatal(err)
			}
			h.k.Run()
			var got []int
			for _, d := range h.got {
				got = append(got, d.node)
				if d.meta.Hops > tt.ttl {
					t.Errorf("node %d received at %d hops, beyond TTL %d", d.node, d.meta.Hops, tt.ttl)
				}
				if d.meta.Hops != d.node {
					t.Errorf("node %d reports %d hops, want %d on a line", d.node, d.meta.Hops, d.node)
				}
			}
			sort.Ints(got)
			if len(got) != len(tt.want) {
				t.Fatalf("flood ttl=%d reached %v, want %v", tt.ttl, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("flood ttl=%d reached %v, want %v", tt.ttl, got, tt.want)
				}
			}
		})
	}
}

// TestPerturberDrop suppresses a unicast's final delivery and checks the
// drop lands in the traffic ledger, not at the receiver.
func TestPerturberDrop(t *testing.T) {
	h := newHarness(t, 3, false)
	h.net.SetPerturber(func(node int, msg protocol.Message, meta Meta) Perturbation {
		if msg.Kind == protocol.KindGetNew {
			return Perturbation{Drop: true}
		}
		return Perturbation{}
	})
	if err := h.net.Unicast(0, 2, testMsg(protocol.KindGetNew)); err != nil {
		t.Fatal(err)
	}
	if err := h.net.Unicast(0, 2, testMsg(protocol.KindCancel)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 1 || h.got[0].msg.Kind != protocol.KindCancel {
		t.Fatalf("got %d deliveries, want only the unperturbed CANCEL", len(h.got))
	}
}

// TestPerturberDelayAndDup delays one message past another sent later
// (reordering) and checks a duplicated delivery arrives twice with the
// duplicate at the delayed time.
func TestPerturberDelayAndDup(t *testing.T) {
	h := newHarness(t, 2, false)
	h.net.SetPerturber(func(node int, msg protocol.Message, meta Meta) Perturbation {
		switch msg.Kind {
		case protocol.KindGetNew:
			return Perturbation{Delay: time.Second}
		case protocol.KindInvalidation:
			return Perturbation{Dup: true, Delay: 2 * time.Second}
		}
		return Perturbation{}
	})
	if err := h.net.Unicast(0, 1, testMsg(protocol.KindGetNew)); err != nil {
		t.Fatal(err)
	}
	if err := h.net.Unicast(0, 1, testMsg(protocol.KindCancel)); err != nil {
		t.Fatal(err)
	}
	if err := h.net.Unicast(0, 1, testMsg(protocol.KindInvalidation)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	var kinds []protocol.Kind
	for _, d := range h.got {
		kinds = append(kinds, d.msg.Kind)
	}
	want := []protocol.Kind{
		protocol.KindCancel,       // unperturbed, arrives first
		protocol.KindInvalidation, // on-time copy of the dup
		protocol.KindGetNew,       // delayed 1s: overtaken by the later sends
		protocol.KindInvalidation, // duplicate copy, delayed 2s
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d deliveries %v, want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", kinds, want)
		}
	}
	// The delayed deliveries must stamp their actual arrival time.
	last := h.got[len(h.got)-1]
	if last.meta.At < 2*time.Second {
		t.Errorf("duplicate delivered at %v, want >= 2s", last.meta.At)
	}
}

// TestPerturberNilIsIdentity runs the same seeded flood with and without
// an installed no-op perturber: the delivery sequence must be identical,
// so un-perturbed runs stay byte-identical.
func TestPerturberNilIsIdentity(t *testing.T) {
	run := func(install bool) []delivery {
		h := newHarness(t, 6, false)
		if install {
			h.net.SetPerturber(func(int, protocol.Message, Meta) Perturbation {
				return Perturbation{}
			})
		}
		if err := h.net.Flood(0, 3, testMsg(protocol.KindInvalidation)); err != nil {
			t.Fatal(err)
		}
		if err := h.net.Unicast(0, 4, testMsg(protocol.KindGetNew)); err != nil {
			t.Fatal(err)
		}
		h.k.Run()
		return h.got
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].node != b[i].node || a[i].msg.Kind != b[i].msg.Kind || a[i].meta != b[i].meta {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
