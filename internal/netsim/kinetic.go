package netsim

import (
	"container/heap"
	"math"
	"time"

	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/mobility"
	"github.com/manetlab/rpcc/internal/radio"
	"github.com/manetlab/rpcc/internal/sim"
)

// The kinetic topology plane replaces per-snapshot full rebuilds with
// event-driven neighbour maintenance. Node motion is piecewise linear
// (random waypoint legs), so for every tracked node pair we can bound the
// earliest time the pair could cross the communication range R: with the
// pair at distance d and the two current legs moving at (exact, effective)
// speeds s_u and s_v, no crossing can happen before t + |d−R|/(s_u+s_v),
// and no leg's contribution changes before the leg's segment ends. The
// minimum of those bounds is the pair's certificate; certificates are
// scheduled as kernel events and re-verified with exact analytic positions
// when they fire, so float error can delay a detection but never corrupt
// one — link state is always confirmed by an exact distance test.
//
// Candidate pairs come from a Verlet-style skin: nodes are binned on a
// grid of side R+skin by their anchor (last rebin) position, and a node
// re-bins before it can drift skin/2 from its anchor. Any untracked pair
// therefore has anchor distance > R+skin and true distance > R, so links
// can only form on tracked pairs — the exactness invariant.
//
// Snapshots stay byte-identical to the full-rebuild path: Graph() samples
// positions at exactly the same times (so mobility Moves accounting and
// RNG draw order match), link membership at the sample time is exact, and
// the CSR is packed with the same down-node filtering and ascending row
// order the GraphBuilder produces. The equivalence tests in
// kinetic_test.go pin this on seeded mobile+churn histories.

// KineticSource is the position source contract the kinetic plane needs:
// batch sampling plus non-mutating analytic peeks at (possibly future)
// positions and motion segments. *mobility.Field implements it.
type KineticSource interface {
	PositionSource
	PeekPosition(i int, t time.Duration) geo.Point
	SegmentAt(i int, t time.Duration) mobility.Segment
}

// TopologyStats counts the kinetic plane's work — the accounting behind
// the rpcc_topology_* and rpcc_route_invalidation_* telemetry families.
type TopologyStats struct {
	// FullRebuilds counts full topology builds (every serial-mode rebuild,
	// plus the kinetic plane's initial build).
	FullRebuilds uint64
	// KineticSamples counts snapshots produced by incremental advance —
	// rebuilds avoided relative to the full-rebuild baseline.
	KineticSamples uint64
	// LinkMakes / LinkBreaks count kinetic link state flips.
	LinkMakes, LinkBreaks uint64
	// CertChecks counts certificate re-verifications (exact distance
	// tests triggered by due certificates).
	CertChecks uint64
	// Rebins counts Verlet anchor re-bins (candidate rediscovery scans).
	Rebins uint64
	// RoutesRepaired / RoutesDropped count per-destination route tables
	// incrementally repaired vs dropped (affected region too large) at
	// samples; RouteFullResets counts wholesale route-cache resets (every
	// serial-mode rebuild does one).
	RoutesRepaired, RoutesDropped, RouteFullResets uint64
}

// Add folds another stats block into s — the sharded scale path sums the
// per-region networks' counters into one report.
func (s *TopologyStats) Add(o TopologyStats) {
	s.FullRebuilds += o.FullRebuilds
	s.KineticSamples += o.KineticSamples
	s.LinkMakes += o.LinkMakes
	s.LinkBreaks += o.LinkBreaks
	s.CertChecks += o.CertChecks
	s.Rebins += o.Rebins
	s.RoutesRepaired += o.RoutesRepaired
	s.RoutesDropped += o.RoutesDropped
	s.RouteFullResets += o.RouteFullResets
}

const (
	// kinSkinFactor scales the Verlet skin relative to the comm range.
	kinSkinFactor = 0.5
	// kinMinGrain batches the kernel driver event: certificates already
	// due are still verified exactly at the next sample, so delaying the
	// mid-window driver never affects snapshot contents — it only spreads
	// the work. It also bounds the event rate of grazing pairs sitting
	// numerically at the range boundary.
	kinMinGrain = time.Millisecond
)

type pairState struct {
	u, v    int32
	linked  bool
	dead    bool
	gen     uint32 // heap-entry generation, bumped on slab free
	pendIdx int32
	pendGen uint32
	diffGen uint32
}

type pendEntry struct {
	u, v int32
	add  bool
	dead bool
}

// kinItem is one scheduled check: id >= 0 is a pair slab index, id < 0 a
// node rebin (node = ^id). gen lazily invalidates superseded entries.
type kinItem struct {
	due time.Duration
	id  int32
	gen uint32
}

type kinHeap []kinItem

func (h kinHeap) Len() int           { return len(h) }
func (h kinHeap) Less(i, j int) bool { return h[i].due < h[j].due }
func (h kinHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *kinHeap) Push(x any)        { *h = append(*h, x.(kinItem)) }
func (h *kinHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

type kinetic struct {
	src  KineticSource
	n    int
	r    float64
	r2   float64
	skin float64
	side float64

	anchors  []geo.Point
	cellOf   []int64
	cells    map[int64][]int32
	rebinGen []uint32

	pairs   []pairState
	free    []int32
	pairIdx map[uint64]int32
	tracked [][]int32 // per node: pair slab indices

	linkedAdj [][]int32 // sorted linked geometric neighbour rows

	heap kinHeap

	pending []pendEntry
	sample  uint32

	downPrev []bool
	inited   bool
	initing  bool

	ev   *sim.Event
	evAt time.Duration

	stats *TopologyStats
}

func newKinetic(src KineticSource, commRange float64, stats *TopologyStats) *kinetic {
	n := src.Len()
	skin := commRange * kinSkinFactor
	return &kinetic{
		src:       src,
		n:         n,
		sample:    1, // 0 is the zero value of diffGen/pendGen: must never be current
		r:         commRange,
		r2:        commRange * commRange,
		skin:      skin,
		side:      commRange + skin,
		anchors:   make([]geo.Point, n),
		cellOf:    make([]int64, n),
		cells:     make(map[int64][]int32),
		rebinGen:  make([]uint32, n),
		pairIdx:   make(map[uint64]int32),
		tracked:   make([][]int32, n),
		linkedAdj: make([][]int32, n),
		downPrev:  make([]bool, n),
		stats:     stats,
	}
}

func pairKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// cellKey packs unclamped (possibly negative) cell coordinates; a map
// keyed this way needs no terrain bounds at all.
func cellKey(cx, cy int32) int64 { return int64(cx)<<32 | int64(uint32(cy)) }

func (kn *kinetic) cellCoords(p geo.Point) (int32, int32) {
	return int32(math.Floor(p.X / kn.side)), int32(math.Floor(p.Y / kn.side))
}

// posAt returns node i's exact position at time t: from the sample buffer
// when one is supplied (sample-time drains), otherwise via an analytic
// peek. Both produce bit-identical points for equal times.
func (kn *kinetic) posAt(i int32, t time.Duration, pos []geo.Point) geo.Point {
	if pos != nil {
		return pos[i]
	}
	return kn.src.PeekPosition(int(i), t)
}

func insertSorted(s []int32, x int32) []int32 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = x
	return s
}

func removeSorted(s []int32, x int32) []int32 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == x {
		copy(s[lo:], s[lo+1:])
		s = s[:len(s)-1]
	}
	return s
}

// init performs the one full build: anchors, cell bins, candidate pair
// discovery and the initial certificate schedule, all at time t with the
// sampled positions.
func (kn *kinetic) init(t time.Duration, pos []geo.Point) {
	copy(kn.anchors, pos)
	for i := 0; i < kn.n; i++ {
		cx, cy := kn.cellCoords(pos[i])
		key := cellKey(cx, cy)
		kn.cellOf[i] = key
		kn.cells[key] = append(kn.cells[key], int32(i))
	}
	kn.initing = true
	for i := 0; i < kn.n; i++ {
		kn.discover(int32(i), t, pos)
	}
	kn.initing = false
	for i := 0; i < kn.n; i++ {
		kn.scheduleRebin(int32(i), t, pos)
	}
	kn.inited = true
	kn.stats.FullRebuilds++
}

// discover scans the 3×3 cell block around node u's anchor and starts
// tracking every candidate pair (anchor distance ≤ R+skin) not already
// tracked.
func (kn *kinetic) discover(u int32, t time.Duration, pos []geo.Point) {
	au := kn.anchors[u]
	cx, cy := kn.cellCoords(au)
	maxD2 := kn.side * kn.side
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			for _, j := range kn.cells[cellKey(cx+dx, cy+dy)] {
				if j == u {
					continue
				}
				if au.DistSq(kn.anchors[j]) > maxD2 {
					continue
				}
				if _, ok := kn.pairIdx[pairKey(u, j)]; ok {
					continue
				}
				kn.trackPair(u, j, t, pos)
			}
		}
	}
}

func (kn *kinetic) trackPair(u, v int32, t time.Duration, pos []geo.Point) {
	var idx int32
	if n := len(kn.free); n > 0 {
		idx = kn.free[n-1]
		kn.free = kn.free[:n-1]
		gen := kn.pairs[idx].gen
		kn.pairs[idx] = pairState{u: u, v: v, gen: gen}
	} else {
		idx = int32(len(kn.pairs))
		kn.pairs = append(kn.pairs, pairState{u: u, v: v})
	}
	kn.pairIdx[pairKey(u, v)] = idx
	kn.tracked[u] = append(kn.tracked[u], idx)
	kn.tracked[v] = append(kn.tracked[v], idx)
	pu := kn.posAt(u, t, pos)
	pv := kn.posAt(v, t, pos)
	d2 := pu.DistSq(pv)
	if d2 <= kn.r2 {
		// A pair is only untracked while strictly out of range, so a
		// linked discovery is a genuine link-make event.
		kn.pairs[idx].linked = true
		kn.linkedAdj[u] = insertSorted(kn.linkedAdj[u], v)
		kn.linkedAdj[v] = insertSorted(kn.linkedAdj[v], u)
		if !kn.initing {
			kn.pendFlip(idx, true)
			kn.stats.LinkMakes++
		}
	}
	kn.scheduleCert(idx, t, pu, pv)
}

// dropPair stops tracking a pair whose anchors have separated beyond
// R+skin. Separated anchors imply true distance > R, so a still-linked
// pair must break here (its certificate may simply not have been drained
// yet this batch).
func (kn *kinetic) dropPair(idx int32, fromRebin int32) {
	st := &kn.pairs[idx]
	if st.linked {
		kn.linkedAdj[st.u] = removeSorted(kn.linkedAdj[st.u], st.v)
		kn.linkedAdj[st.v] = removeSorted(kn.linkedAdj[st.v], st.u)
		st.linked = false
		kn.pendFlip(idx, false)
		kn.stats.LinkBreaks++
	}
	delete(kn.pairIdx, pairKey(st.u, st.v))
	for _, nd := range [2]int32{st.u, st.v} {
		if nd == fromRebin {
			continue // caller compacts its own tracked list
		}
		lst := kn.tracked[nd]
		for i, p := range lst {
			if p == idx {
				lst[i] = lst[len(lst)-1]
				kn.tracked[nd] = lst[:len(lst)-1]
				break
			}
		}
	}
	st.dead = true
	st.gen++
	kn.free = append(kn.free, idx)
}

// pendFlip records a link flip for the next sample's CSR diff, with
// parity cancellation: a pair that flips twice between samples nets out.
func (kn *kinetic) pendFlip(idx int32, add bool) {
	st := &kn.pairs[idx]
	if st.pendGen == kn.sample && int(st.pendIdx) < len(kn.pending) {
		e := &kn.pending[st.pendIdx]
		if e.u == st.u && e.v == st.v {
			e.dead = !e.dead
			e.add = add
			return
		}
	}
	st.pendIdx = int32(len(kn.pending))
	st.pendGen = kn.sample
	kn.pending = append(kn.pending, pendEntry{u: st.u, v: st.v, add: add})
}

// scheduleCert schedules the pair's next crossing certificate by solving
// the pair's link-crossing time analytically on the current motion legs:
// both nodes move linearly until the earlier segment end, so
// |q0 + wΔ|² = R² is a quadratic in Δ (q0 the current separation, w the
// relative velocity). A linked pair re-checks at its exit root, an
// unlinked approaching pair at its entry root, and a pair whose legs
// never cross R re-checks only when a leg ends — most tracked pairs cost
// zero work until then.
func (kn *kinetic) scheduleCert(idx int32, t time.Duration, pu, pv geo.Point) {
	st := &kn.pairs[idx]
	segU := kn.src.SegmentAt(int(st.u), t)
	segV := kn.src.SegmentAt(int(st.v), t)
	due := segU.End
	if segV.End < due {
		due = segV.End
	}
	wx := segU.Vel.X - segV.Vel.X
	wy := segU.Vel.Y - segV.Vel.Y
	if a := wx*wx + wy*wy; a > 0 {
		qx := pu.X - pv.X
		qy := pu.Y - pv.Y
		b := 2 * (qx*wx + qy*wy)
		c := qx*qx + qy*qy - kn.r2
		disc := b*b - 4*a*c
		delta := -1.0 // seconds until the crossing; <0 = none on these legs
		if c <= 0 {
			// Inside R (disc ≥ b² here): the exit is the larger root,
			// which is never negative.
			delta = (-b + math.Sqrt(disc)) / (2 * a)
		} else if disc > 0 && b < 0 {
			// Outside R and approaching: the entry is the smaller root,
			// in its cancellation-free form.
			delta = 2 * c / (-b + math.Sqrt(disc))
		}
		if delta >= 0 {
			// The certificate must fire at or before the true crossing —
			// a cert landing after a snapshot that the crossing preceded
			// would leave the sample stale. Shaving a relative 1e-9 plus
			// an absolute 1µs absorbs every float rounding in the solve;
			// firing early is self-correcting (the exact distance test
			// re-arms the certificate).
			d := time.Duration(delta*(1-1e-9)*float64(time.Second)) - time.Microsecond
			if cand := t + d; cand < due {
				due = cand
			}
		}
	}
	if due <= t {
		due = t + 1
	}
	heap.Push(&kn.heap, kinItem{due: due, id: idx, gen: st.gen})
}

// scheduleRebin schedules the time by which node u must re-anchor: before
// it can drift skin/2 from its anchor, and no later than its current
// motion segment's end (a paused node schedules nothing until the pause
// ends).
func (kn *kinetic) scheduleRebin(u int32, t time.Duration, pos []geo.Point) {
	seg := kn.src.SegmentAt(int(u), t)
	due := seg.End
	if seg.Speed > 0 {
		drift := kn.anchors[u].Dist(kn.posAt(u, t, pos))
		remaining := kn.skin/2 - drift
		if remaining < 0 {
			remaining = 0
		}
		if d := t + time.Duration(remaining/seg.Speed*float64(time.Second)); d < due {
			due = d
		}
	}
	if due <= t {
		due = t + 1
	}
	kn.rebinGen[u]++
	heap.Push(&kn.heap, kinItem{due: due, id: ^u, gen: kn.rebinGen[u]})
}

// processRebin re-anchors node u if it drifted meaningfully, rescans its
// 3×3 block for new candidates and drops pairs whose anchors separated.
func (kn *kinetic) processRebin(u int32, t time.Duration, pos []geo.Point) {
	p := kn.posAt(u, t, pos)
	if kn.anchors[u].Dist(p) >= kn.skin/4 {
		kn.stats.Rebins++
		kn.anchors[u] = p
		cx, cy := kn.cellCoords(p)
		key := cellKey(cx, cy)
		if key != kn.cellOf[u] {
			old := kn.cells[kn.cellOf[u]]
			for i, x := range old {
				if x == u {
					old[i] = old[len(old)-1]
					kn.cells[kn.cellOf[u]] = old[:len(old)-1]
					break
				}
			}
			kn.cellOf[u] = key
			kn.cells[key] = append(kn.cells[key], u)
		}
		// Drop pairs whose anchors separated beyond the skin envelope.
		maxD2 := kn.side * kn.side
		lst := kn.tracked[u]
		kept := lst[:0]
		for _, idx := range lst {
			st := &kn.pairs[idx]
			other := st.u
			if other == u {
				other = st.v
			}
			if p.DistSq(kn.anchors[other]) > maxD2 {
				kn.dropPair(idx, u)
			} else {
				kept = append(kept, idx)
			}
		}
		kn.tracked[u] = kept
		kn.discover(u, t, pos)
	}
	kn.scheduleRebin(u, t, pos)
}

// processPair re-verifies a due certificate with an exact distance test,
// records any link flip, and schedules the next certificate.
func (kn *kinetic) processPair(idx int32, t time.Duration, pos []geo.Point) {
	st := &kn.pairs[idx]
	kn.stats.CertChecks++
	pu := kn.posAt(st.u, t, pos)
	pv := kn.posAt(st.v, t, pos)
	d2 := pu.DistSq(pv)
	linked := d2 <= kn.r2
	if linked != st.linked {
		if linked {
			kn.linkedAdj[st.u] = insertSorted(kn.linkedAdj[st.u], st.v)
			kn.linkedAdj[st.v] = insertSorted(kn.linkedAdj[st.v], st.u)
			kn.stats.LinkMakes++
		} else {
			kn.linkedAdj[st.u] = removeSorted(kn.linkedAdj[st.u], st.v)
			kn.linkedAdj[st.v] = removeSorted(kn.linkedAdj[st.v], st.u)
			kn.stats.LinkBreaks++
		}
		st.linked = linked
		kn.pendFlip(idx, linked)
	}
	kn.scheduleCert(idx, t, pu, pv)
}

// drainUntil processes every scheduled check due at or before t. With a
// position buffer (sample time) the checks use the sampled positions;
// without one (mid-window driver) they use analytic peeks.
func (kn *kinetic) drainUntil(t time.Duration, pos []geo.Point) {
	for len(kn.heap) > 0 && kn.heap[0].due <= t {
		it := heap.Pop(&kn.heap).(kinItem)
		if it.id >= 0 {
			st := &kn.pairs[it.id]
			if st.dead || st.gen != it.gen {
				continue
			}
			kn.processPair(it.id, t, pos)
		} else {
			u := ^it.id
			if kn.rebinGen[u] != it.gen {
				continue
			}
			kn.processRebin(u, t, pos)
		}
	}
}

// scheduleDriver keeps one kernel event pending at the next certificate
// due time (clamped to now+kinMinGrain so grazing pairs cannot storm the
// queue; sample-time drains keep snapshots exact regardless).
func (kn *kinetic) scheduleDriver(k *sim.Kernel) {
	if len(kn.heap) == 0 {
		return
	}
	at := kn.heap[0].due
	if min := k.Now() + kinMinGrain; at < min {
		at = min
	}
	if kn.ev != nil && !kn.ev.Fired() && !kn.ev.Cancelled() {
		if kn.evAt <= at {
			return
		}
		k.Cancel(kn.ev)
	}
	kn.evAt = at
	kn.ev = k.After(at-k.Now(), "netsim.kinetic", func(kk *sim.Kernel) {
		kn.drainUntil(kk.Now(), nil)
		kn.scheduleDriver(kk)
	})
}

// csrDiffs converts the window's pending link flips plus the down-mask
// delta into the exact set of CSR edge changes between the previous and
// the new snapshot, and rolls the sample counter.
func (kn *kinetic) csrDiffs(down []bool, buf []radio.EdgeDiff) []radio.EdgeDiff {
	diffs := buf[:0]
	for i := range kn.pending {
		e := &kn.pending[i]
		if e.dead {
			continue
		}
		if idx, ok := kn.pairIdx[pairKey(e.u, e.v)]; ok {
			kn.pairs[idx].diffGen = kn.sample
		}
		inOld := !e.add && !kn.downPrev[e.u] && !kn.downPrev[e.v]
		inNew := e.add && !down[e.u] && !down[e.v]
		if inOld != inNew {
			diffs = append(diffs, radio.EdgeDiff{U: e.u, V: e.v, Add: inNew})
		}
	}
	for w := 0; w < kn.n; w++ {
		if kn.downPrev[w] == down[w] {
			continue
		}
		for _, x := range kn.linkedAdj[w] {
			idx, ok := kn.pairIdx[pairKey(int32(w), x)]
			if ok && kn.pairs[idx].diffGen == kn.sample {
				continue
			}
			if ok {
				kn.pairs[idx].diffGen = kn.sample
			}
			inOld := !kn.downPrev[w] && !kn.downPrev[x]
			inNew := !down[w] && !down[x]
			if inOld != inNew {
				diffs = append(diffs, radio.EdgeDiff{U: int32(w), V: x, Add: inNew})
			}
		}
	}
	kn.pending = kn.pending[:0]
	copy(kn.downPrev, down)
	kn.sample++
	return diffs
}
