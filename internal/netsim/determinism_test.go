package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/mobility"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// scenarioOutcome captures everything observable from one seeded run: the
// full delivery sequence, the traffic ledger, and the kernel event count.
type scenarioOutcome struct {
	deliveries []delivery
	traffic    []stats.KindCount
	events     uint64
	rebuilds   uint64
}

// runSeededScenario drives a mobile, churning 24-node network through two
// simulated minutes of mixed unicast and flood traffic, with the route
// cache enabled or disabled. Everything else — seeds, schedules, message
// contents — is held identical, so any divergence between the two modes
// is a behavioural leak in the memoization.
func runSeededScenario(t *testing.T, disableCache bool) scenarioOutcome {
	t.Helper()
	const n = 24
	k := sim.NewKernel(sim.WithSeed(7), sim.WithHorizon(2*time.Minute))
	terrain, err := geo.NewTerrain(1500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	field, err := mobility.NewField(mobility.Config{
		Terrain:  terrain,
		MinSpeed: 1,
		MaxSpeed: 15,
		Pause:    2 * time.Second,
	}, n, func(i int) *rand.Rand { return k.Stream(fmt.Sprintf("mobility.%d", i)) })
	if err != nil {
		t.Fatal(err)
	}
	cp, err := churn.NewProcess(churn.Config{
		MeanUp:   30 * time.Second,
		MeanDown: 5 * time.Second,
	}, n, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DisableRouteCache = disableCache
	traffic := stats.NewTraffic()
	net, err := New(cfg, k, field, cp, nil, traffic)
	if err != nil {
		t.Fatal(err)
	}
	var got []delivery
	for i := 0; i < n; i++ {
		if err := net.SetReceiver(i, func(_ *sim.Kernel, node int, msg protocol.Message, meta Meta) {
			got = append(got, delivery{node: node, msg: msg, meta: meta})
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Workload: a unicast every 500ms between pseudo-random endpoints and
	// a TTL-4 flood every 3s, both drawn from a dedicated kernel stream so
	// the schedule is identical across cache modes.
	wl := k.Stream("workload")
	seq := uint64(0)
	if _, err := k.Every(500*time.Millisecond, "test.unicast", func(kk *sim.Kernel) {
		seq++
		src, dst := wl.Intn(n), wl.Intn(n)
		msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Version: 1, Origin: src, Seq: seq}
		if err := net.Unicast(src, dst, msg); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Every(3*time.Second, "test.flood", func(kk *sim.Kernel) {
		seq++
		origin := wl.Intn(n)
		msg := protocol.Message{Kind: protocol.KindInvalidation, Item: 2, Version: 2, Origin: origin, Seq: seq}
		if err := net.Flood(origin, 4, msg); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	return scenarioOutcome{
		deliveries: got,
		traffic:    traffic.Snapshot(),
		events:     k.EventsFired(),
		rebuilds:   net.Rebuilds(),
	}
}

// TestRouteCacheIsBehaviourallyInvisible is the determinism regression
// gate for the memoized routing path: the same seeded scenario run with
// the per-snapshot route cache and with pure per-call BFS must produce
// identical delivery sequences (order, hops, timestamps, flood ids),
// identical traffic ledgers, and identical kernel event counts.
func TestRouteCacheIsBehaviourallyInvisible(t *testing.T) {
	cached := runSeededScenario(t, false)
	uncached := runSeededScenario(t, true)
	if len(cached.deliveries) == 0 {
		t.Fatal("scenario produced no deliveries; workload broken")
	}
	if cached.events != uncached.events {
		t.Errorf("kernel events: cached %d, uncached %d", cached.events, uncached.events)
	}
	if cached.rebuilds != uncached.rebuilds {
		t.Errorf("rebuilds: cached %d, uncached %d", cached.rebuilds, uncached.rebuilds)
	}
	if !reflect.DeepEqual(cached.traffic, uncached.traffic) {
		t.Errorf("traffic ledgers diverge:\ncached:   %+v\nuncached: %+v", cached.traffic, uncached.traffic)
	}
	if len(cached.deliveries) != len(uncached.deliveries) {
		t.Fatalf("delivery counts: cached %d, uncached %d",
			len(cached.deliveries), len(uncached.deliveries))
	}
	for i := range cached.deliveries {
		if !reflect.DeepEqual(cached.deliveries[i], uncached.deliveries[i]) {
			t.Fatalf("delivery %d diverges:\ncached:   %+v\nuncached: %+v",
				i, cached.deliveries[i], uncached.deliveries[i])
		}
	}
}

// TestFloodIDsSequenceAndGroupDeliveries: each Flood call gets the next
// nonzero id, every delivery of one flood carries that id, and unicast
// deliveries carry zero.
func TestFloodIDsSequenceAndGroupDeliveries(t *testing.T) {
	h := newHarness(t, 5, false)
	if err := h.net.Flood(0, 4, testMsg(protocol.KindInvalidation)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if err := h.net.Flood(2, 4, testMsg(protocol.KindGetNew)); err != nil {
		t.Fatal(err)
	}
	if err := h.net.Unicast(0, 1, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	var first, second, unicasts int
	for _, d := range h.got {
		switch {
		case !d.meta.Flood:
			unicasts++
			if d.meta.FloodID != 0 {
				t.Errorf("unicast delivery carries flood id %d", d.meta.FloodID)
			}
		case d.msg.Kind == protocol.KindInvalidation:
			first++
			if d.meta.FloodID != 1 {
				t.Errorf("first flood delivery has id %d, want 1", d.meta.FloodID)
			}
		default:
			second++
			if d.meta.FloodID != 2 {
				t.Errorf("second flood delivery has id %d, want 2", d.meta.FloodID)
			}
		}
	}
	if first == 0 || second == 0 || unicasts == 0 {
		t.Fatalf("workload incomplete: first=%d second=%d unicasts=%d", first, second, unicasts)
	}
}

// TestFloodStateIsPooled: sequential floods must recycle the pooled
// duplicate-suppression state rather than growing the pool.
func TestFloodStateIsPooled(t *testing.T) {
	h := newHarness(t, 6, false)
	for i := 0; i < 4; i++ {
		if err := h.net.Flood(0, 5, testMsg(protocol.KindInvalidation)); err != nil {
			t.Fatal(err)
		}
		h.k.Run()
		if len(h.net.floodPool) != 1 {
			t.Fatalf("after flood %d: pool holds %d states, want 1", i+1, len(h.net.floodPool))
		}
		st := h.net.floodPool[0]
		for v, seen := range st.visited {
			if seen {
				t.Fatalf("pooled state not cleared: node %d still visited", v)
			}
		}
		if st.pending != 0 {
			t.Fatalf("pooled state has %d pending receptions", st.pending)
		}
	}
}
