package radio

import (
	"math"
	"slices"

	"github.com/manetlab/rpcc/internal/geo"
)

// GraphBuilder rebuilds connectivity snapshots without reallocating: the
// CSR arrays, the down mask, the spatial-grid buckets and the route-cache
// distance tables all persist across Build calls. The network layer holds
// one builder and calls Build every topology-refresh tick.
//
// Build returns the same *Graph on every call; the previous snapshot is
// overwritten in place. Callers must therefore treat a returned graph as
// valid only until the next Build — which the simulator guarantees by
// construction, since every event handler re-fetches the current snapshot
// and never retains one across events.
type GraphBuilder struct {
	g Graph

	// Spatial grid scratch: terrain cells of side = comm range, a CSR of
	// node ids per cell (cellOff/cellNodes) and each node's cell index.
	cellOf    []int32
	cellOff   []int32
	cellNodes []int32
	fill      []int32 // write cursors (per cell or per node)
}

// NewGraphBuilder returns an empty builder; buffers grow on first Build.
func NewGraphBuilder() *GraphBuilder { return &GraphBuilder{} }

// smallBuildCutoff is the node count at and below which Build uses the
// pairwise sweep instead of the spatial grid (identical output, lower
// constant factors at small n).
const smallBuildCutoff = 100

// Build constructs the snapshot for the given positions. down may be nil
// (all up) or a slice of the same length flagging unreachable nodes.
//
// Neighbour discovery uses a uniform grid with cell side equal to the
// communication range: a node's neighbours can only lie in its own or the
// eight surrounding cells, so the scan is O(n·k) for k candidates per
// neighbourhood instead of the O(n²) all-pairs sweep. Rows are sorted
// ascending, which yields byte-identical adjacency — and therefore
// identical routing and simulation output — to the pairwise reference
// build (BuildPairwise).
func (b *GraphBuilder) Build(pos []geo.Point, down []bool, commRange float64, stamp uint64) (*Graph, error) {
	if err := validate(pos, down, commRange); err != nil {
		return nil, err
	}
	g := b.prepare(pos, down, commRange, stamp)
	n := g.n
	if n == 0 {
		return g, nil
	}
	// At small n the O(n²) sweep beats the grid: bucketing, the 3×3 block
	// walk and the per-row sorts cost more than ~n²/2 distance checks. The
	// crossover sits near 100 nodes on current hardware; both paths emit
	// the identical snapshot (property-tested), so this is purely a lever
	// on constant factors — it is what un-regressed BenchmarkFloodStorm.
	if n <= smallBuildCutoff {
		b.fillPairwise(pos, commRange)
		return g, nil
	}

	// Bounding box of the actual positions keeps the grid tight even when
	// nodes cluster in a corner of a large terrain.
	minX, minY := pos[0].X, pos[0].Y
	maxX, maxY := minX, minY
	for _, p := range pos[1:] {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	cols := int((maxX-minX)/commRange) + 1
	rows := int((maxY-minY)/commRange) + 1
	// Degenerate spreads (a few nodes flung across kilometres) would blow
	// the grid up to more cells than pairs; fall back to the O(n²) scan,
	// which produces the identical snapshot.
	if float64(cols)*float64(rows) > math.Max(1024, 16*float64(n)) {
		b.fillPairwise(pos, commRange)
		return g, nil
	}

	// Bucket up-nodes by cell with a counting sort: ascending node order
	// within each cell falls out of the two ascending passes.
	nCells := cols * rows
	b.cellOf = resizeI32(b.cellOf, n)
	b.cellOff = resizeI32(b.cellOff, nCells+1)
	b.cellNodes = b.cellNodes[:0]
	for i := range b.cellOff[:nCells+1] {
		b.cellOff[i] = 0
	}
	for i := 0; i < n; i++ {
		if g.down[i] {
			b.cellOf[i] = -1
			continue
		}
		cx := int((pos[i].X - minX) / commRange)
		cy := int((pos[i].Y - minY) / commRange)
		c := int32(cy*cols + cx)
		b.cellOf[i] = c
		b.cellOff[c+1]++
	}
	for c := 0; c < nCells; c++ {
		b.cellOff[c+1] += b.cellOff[c]
	}
	b.cellNodes = resizeI32(b.cellNodes, int(b.cellOff[nCells]))
	b.fill = resizeI32(b.fill, nCells)
	fill := b.fill
	copy(fill, b.cellOff[:nCells])
	for i := 0; i < n; i++ {
		if c := b.cellOf[i]; c >= 0 {
			b.cellNodes[fill[c]] = int32(i)
			fill[c]++
		}
	}

	// Per-node neighbour scan over the 3×3 cell block.
	r2 := commRange * commRange
	tgt := g.tgt[:0]
	for i := 0; i < n; i++ {
		g.off[i] = int32(len(tgt))
		c := b.cellOf[i]
		if c < 0 {
			continue
		}
		cx, cy := int(c)%cols, int(c)/cols
		rowStart := len(tgt)
		for dy := -1; dy <= 1; dy++ {
			y := cy + dy
			if y < 0 || y >= rows {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				x := cx + dx
				if x < 0 || x >= cols {
					continue
				}
				cell := y*cols + x
				for _, j32 := range b.cellNodes[b.cellOff[cell]:b.cellOff[cell+1]] {
					j := int(j32)
					if j != i && pos[i].DistSq(pos[j]) <= r2 {
						tgt = append(tgt, j)
					}
				}
			}
		}
		// Cells are visited in block order, not id order; restore the
		// ascending row the pairwise build produces.
		slices.Sort(tgt[rowStart:])
	}
	g.off[n] = int32(len(tgt))
	g.tgt = tgt
	return g, nil
}

// BuildPairwise constructs the identical snapshot with the original O(n²)
// all-pairs scan. It is the reference implementation the equivalence tests
// and the bench-compare baseline run against.
func (b *GraphBuilder) BuildPairwise(pos []geo.Point, down []bool, commRange float64, stamp uint64) (*Graph, error) {
	if err := validate(pos, down, commRange); err != nil {
		return nil, err
	}
	g := b.prepare(pos, down, commRange, stamp)
	b.fillPairwise(pos, commRange)
	return g, nil
}

// prepare resets the reused graph for a new snapshot: sizes the CSR and
// down mask, recycles the route-cache tables, and stores the metadata.
func (b *GraphBuilder) prepare(pos []geo.Point, down []bool, commRange float64, stamp uint64) *Graph {
	g := &b.g
	n := len(pos)
	if g.n != n {
		// Distance tables are length-bound to n; drop them on resize.
		g.dist = nil
		g.built = g.built[:0]
		g.distPool = nil
	} else {
		g.resetRoutes()
	}
	g.n = n
	g.rng = commRange
	g.stamp = stamp
	g.cacheOn = true
	g.off = resizeI32(g.off, n+1)
	if cap(g.down) < n {
		g.down = make([]bool, n)
	}
	g.down = g.down[:n]
	if down != nil {
		copy(g.down, down)
	} else {
		for i := range g.down {
			g.down[i] = false
		}
	}
	if cap(g.queue) < n {
		g.queue = make([]int32, 0, n)
	}
	return g
}

// fillPairwise writes the CSR rows with the all-pairs sweep: a counting
// pass sizes each row, a fill pass writes neighbours in ascending order.
func (b *GraphBuilder) fillPairwise(pos []geo.Point, commRange float64) {
	g := &b.g
	n := g.n
	r2 := commRange * commRange
	for i := range g.off[:n+1] {
		g.off[i] = 0
	}
	for i := 0; i < n; i++ {
		if g.down[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if g.down[j] {
				continue
			}
			if pos[i].DistSq(pos[j]) <= r2 {
				g.off[i+1]++
				g.off[j+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		g.off[i+1] += g.off[i]
	}
	total := int(g.off[n])
	if cap(g.tgt) < total {
		g.tgt = make([]int, total)
	}
	g.tgt = g.tgt[:total]
	b.fill = resizeI32(b.fill, n)
	fill := b.fill
	copy(fill, g.off[:n])
	for i := 0; i < n; i++ {
		if g.down[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if g.down[j] {
				continue
			}
			if pos[i].DistSq(pos[j]) <= r2 {
				g.tgt[fill[i]] = j
				fill[i]++
				g.tgt[fill[j]] = i
				fill[j]++
			}
		}
	}
}

// resizeI32 returns s with length n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
