package radio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/manetlab/rpcc/internal/geo"
)

// line builds a chain topology: nodes at (0,0), (d,0), (2d,0), ...
func line(n int, spacing float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * spacing, Y: 0}
	}
	return pts
}

func TestNewGraphValidation(t *testing.T) {
	pts := line(3, 100)
	if _, err := NewGraph(pts, nil, 0, 0); err == nil {
		t.Error("zero range accepted")
	}
	if _, err := NewGraph(pts, make([]bool, 2), 100, 0); err == nil {
		t.Error("mismatched down slice accepted")
	}
}

func TestChainConnectivity(t *testing.T) {
	g, err := NewGraph(line(5, 200), nil, 250, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Stamp() != 1 {
		t.Fatalf("Stamp = %d", g.Stamp())
	}
	// Spacing 200 < range 250 < 400: only adjacent nodes connect.
	for i := 0; i < 4; i++ {
		if !g.Connected(i, i+1) {
			t.Errorf("nodes %d,%d not connected", i, i+1)
		}
	}
	if g.Connected(0, 2) {
		t.Error("nodes 0,2 connected across 400m with 250m range")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("degrees = %d,%d want 1,2", g.Degree(0), g.Degree(2))
	}
}

func TestHops(t *testing.T) {
	g, _ := NewGraph(line(6, 200), nil, 250, 0)
	tests := []struct {
		src, dst, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 5, 5},
		{2, 4, 2},
	}
	for _, tt := range tests {
		if got := g.Hops(tt.src, tt.dst); got != tt.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tt.src, tt.dst, got, tt.want)
		}
	}
}

func TestHopsUnreachableAcrossPartition(t *testing.T) {
	// Two clusters far apart.
	pts := append(line(3, 100), geo.Point{X: 5000, Y: 0}, geo.Point{X: 5100, Y: 0})
	g, _ := NewGraph(pts, nil, 250, 0)
	if got := g.Hops(0, 3); got != Unreachable {
		t.Errorf("Hops across partition = %d, want Unreachable", got)
	}
	if got := g.Hops(3, 4); got != 1 {
		t.Errorf("Hops inside far cluster = %d, want 1", got)
	}
}

func TestDownNodesHaveNoEdges(t *testing.T) {
	down := []bool{false, true, false}
	g, _ := NewGraph(line(3, 200), down, 250, 0)
	if g.Up(1) {
		t.Error("down node reported up")
	}
	if g.Degree(1) != 0 {
		t.Errorf("down node degree = %d", g.Degree(1))
	}
	// Node 1 was the bridge: 0 and 2 are now mutually unreachable.
	if got := g.Hops(0, 2); got != Unreachable {
		t.Errorf("Hops through down bridge = %d, want Unreachable", got)
	}
	if g.Hops(1, 1) != Unreachable {
		t.Error("down node reachable from itself")
	}
}

func TestNextHopChain(t *testing.T) {
	g, _ := NewGraph(line(5, 200), nil, 250, 0)
	if got := g.NextHop(0, 4); got != 1 {
		t.Errorf("NextHop(0,4) = %d, want 1", got)
	}
	if got := g.NextHop(4, 0); got != 3 {
		t.Errorf("NextHop(4,0) = %d, want 3", got)
	}
	if got := g.NextHop(0, 0); got != Unreachable {
		t.Errorf("NextHop(0,0) = %d, want Unreachable", got)
	}
}

func TestNextHopDeterministicTieBreak(t *testing.T) {
	// Diamond: 0 - {1,2} - 3; both 1 and 2 are valid next hops, the
	// lower id must win.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 80}, {X: 100, Y: -80}, {X: 200, Y: 0}}
	g, _ := NewGraph(pts, nil, 150, 0)
	if got := g.NextHop(0, 3); got != 1 {
		t.Errorf("NextHop tie-break = %d, want 1", got)
	}
}

func TestNextHopUnreachable(t *testing.T) {
	pts := append(line(2, 100), geo.Point{X: 9000, Y: 0})
	g, _ := NewGraph(pts, nil, 250, 0)
	if got := g.NextHop(0, 2); got != Unreachable {
		t.Errorf("NextHop to island = %d, want Unreachable", got)
	}
}

func TestWithinTTL(t *testing.T) {
	g, _ := NewGraph(line(8, 200), nil, 250, 0)
	got := g.WithinTTL(0, 3)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("WithinTTL = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WithinTTL = %v, want %v", got, want)
		}
	}
	if got := g.WithinTTL(0, 0); got != nil {
		t.Errorf("WithinTTL(ttl=0) = %v, want nil", got)
	}
}

func TestComponentOf(t *testing.T) {
	pts := append(line(3, 100), geo.Point{X: 9000, Y: 0})
	g, _ := NewGraph(pts, nil, 250, 0)
	comp := g.ComponentOf(0)
	if len(comp) != 3 {
		t.Fatalf("ComponentOf(0) = %v, want 3 nodes", comp)
	}
	if len(g.ComponentOf(3)) != 1 {
		t.Error("island component wrong")
	}
}

func TestSymmetryProperty(t *testing.T) {
	terrain, _ := geo.NewTerrain(1500, 1500)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(30)
		pts := make([]geo.Point, n)
		down := make([]bool, n)
		for i := range pts {
			pts[i] = terrain.RandomPoint(r)
			down[i] = r.Intn(10) == 0
		}
		g, err := NewGraph(pts, down, 250, 0)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.Connected(i, j) != g.Connected(j, i) {
					return false
				}
				if g.Hops(i, j) != g.Hops(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNextHopMakesProgressProperty(t *testing.T) {
	// Property: following NextHop strictly decreases the hop distance, so
	// hop-by-hop forwarding terminates at dst.
	terrain, _ := geo.NewTerrain(1000, 1000)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 15 + r.Intn(20)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = terrain.RandomPoint(r)
		}
		g, err := NewGraph(pts, nil, 300, 0)
		if err != nil {
			return false
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst || g.Hops(src, dst) == Unreachable {
					continue
				}
				cur, steps := src, 0
				for cur != dst {
					nh := g.NextHop(cur, dst)
					if nh == Unreachable {
						return false
					}
					if g.Hops(nh, dst) >= g.Hops(cur, dst) {
						return false
					}
					cur = nh
					if steps++; steps > n {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeQueries(t *testing.T) {
	g, _ := NewGraph(line(3, 100), nil, 250, 0)
	if g.Neighbors(-1) != nil || g.Neighbors(99) != nil {
		t.Error("out-of-range Neighbors not nil")
	}
	if g.Up(-1) || g.Up(99) {
		t.Error("out-of-range Up true")
	}
	dist := g.HopsFrom(-1)
	for _, d := range dist {
		if d != Unreachable {
			t.Fatal("HopsFrom(-1) returned reachable node")
		}
	}
}
