package radio

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/manetlab/rpcc/internal/geo"
)

// edgeKey packs an undirected pair (u < v).
func edgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// geoRows computes sorted geometric neighbour rows (ignoring down state),
// the representation the kinetic plane hands to RebuildFromRows.
func geoRows(pos []geo.Point, commRange float64) [][]int32 {
	n := len(pos)
	r2 := commRange * commRange
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && pos[i].DistSq(pos[j]) <= r2 {
				rows[i] = append(rows[i], int32(j))
			}
		}
	}
	return rows
}

// csrEdges collects the up-up filtered edge set from rows+down.
func csrEdges(rows [][]int32, down []bool) map[uint64]bool {
	set := make(map[uint64]bool)
	for i, row := range rows {
		if down[i] {
			continue
		}
		for _, j := range row {
			if !down[j] {
				set[edgeKey(int32(i), j)] = true
			}
		}
	}
	return set
}

// TestPatchRoutesMatchesFreshBFS drives a random mobile + churn history
// through RebuildFromRows + PatchRoutes and checks, at every step, that
// every repaired distance table answers Hops and NextHop exactly like a
// freshly built reference snapshot.
func TestPatchRoutesMatchesFreshBFS(t *testing.T) {
	const (
		n         = 60
		steps     = 40
		commRange = 180.0
		world     = 1000.0
	)
	rng := rand.New(rand.NewSource(7))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: rng.Float64() * world, Y: rng.Float64() * world}
	}
	down := make([]bool, n)

	inc := NewGraphBuilder()
	ref := NewGraphBuilder()

	rows := geoRows(pos, commRange)
	prev := csrEdges(rows, down)
	g, err := inc.RebuildFromRows(n, func(i int) []int32 { return rows[i] }, down, commRange, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.SetRouteTableCap(12) // exercise FIFO eviction alongside repair

	warm := func(g *Graph) {
		for k := 0; k < 6; k++ {
			g.Hops(rng.Intn(n), rng.Intn(n))
		}
	}
	warm(g)

	for step := 1; step <= steps; step++ {
		// Drift positions, flip a little churn.
		for i := range pos {
			pos[i].X += (rng.Float64() - 0.5) * 60
			pos[i].Y += (rng.Float64() - 0.5) * 60
		}
		if step%3 == 0 {
			down[rng.Intn(n)] = !down[rng.Intn(n)]
		}
		rows = geoRows(pos, commRange)
		next := csrEdges(rows, down)

		var diffs []EdgeDiff
		for k := range next {
			if !prev[k] {
				diffs = append(diffs, EdgeDiff{U: int32(k >> 32), V: int32(uint32(k)), Add: true})
			}
		}
		for k := range prev {
			if !next[k] {
				diffs = append(diffs, EdgeDiff{U: int32(k >> 32), V: int32(uint32(k)), Add: false})
			}
		}
		prev = next

		g, err = inc.RebuildFromRows(n, func(i int) []int32 { return rows[i] }, down, commRange, uint64(step))
		if err != nil {
			t.Fatal(err)
		}
		g.PatchRoutes(diffs)
		warm(g)

		refG, err := ref.BuildPairwise(pos, down, commRange, uint64(step))
		if err != nil {
			t.Fatal(err)
		}

		// CSR must match the reference build exactly.
		for i := 0; i < n; i++ {
			if !slices.Equal(g.Neighbors(i), refG.Neighbors(i)) {
				t.Fatalf("step %d: node %d neighbours %v != ref %v", step, i, g.Neighbors(i), refG.Neighbors(i))
			}
		}
		// Every query the cache can answer must match a fresh BFS.
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if got, want := g.Hops(src, dst), refG.Hops(src, dst); got != want {
					t.Fatalf("step %d: Hops(%d,%d) = %d, fresh = %d", step, src, dst, got, want)
				}
				if got, want := g.NextHop(src, dst), refG.NextHop(src, dst); got != want {
					t.Fatalf("step %d: NextHop(%d,%d) = %d, fresh = %d", step, src, dst, got, want)
				}
			}
		}
	}
}

// TestSmallBuildUsesIdenticalSnapshot pins that the small-n pairwise
// fast path and the grid path emit byte-identical CSR rows right around
// the cutoff.
func TestSmallBuildCutoffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{smallBuildCutoff - 1, smallBuildCutoff, smallBuildCutoff + 1, smallBuildCutoff + 40} {
		pos := make([]geo.Point, n)
		for i := range pos {
			pos[i] = geo.Point{X: rng.Float64() * 1500, Y: rng.Float64() * 1500}
		}
		a, err := NewGraphBuilder().Build(pos, nil, 250, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewGraphBuilder().BuildPairwise(pos, nil, 250, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !slices.Equal(a.Neighbors(i), b.Neighbors(i)) {
				t.Fatalf("n=%d node %d: grid/pairwise rows differ", n, i)
			}
		}
	}
}
