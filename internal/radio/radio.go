// Package radio models wireless connectivity as a unit-disk graph: two
// hosts can exchange frames iff their Euclidean distance is at most the
// communication range (250 m in the paper's Table 1). The package produces
// adjacency snapshots from node positions and answers the connectivity
// queries the network layer needs: neighbour sets, BFS hop distances, and
// next-hop selection for hop-by-hop unicast routing.
package radio

import (
	"fmt"

	"github.com/manetlab/rpcc/internal/geo"
)

// Graph is an undirected connectivity snapshot over n nodes. Nodes marked
// down (disconnected by churn or depleted battery) have no edges.
type Graph struct {
	n     int
	adj   [][]int
	down  []bool
	rng   float64 // communication range, metres
	stamp uint64  // snapshot generation, for cache invalidation upstream
}

// NewGraph builds a snapshot from positions. down may be nil (all up) or a
// slice of the same length flagging unreachable nodes. The builder is
// O(n^2), fine for the paper's 50-node field and for the few-hundred-node
// stress tests.
func NewGraph(pos []geo.Point, down []bool, commRange float64, stamp uint64) (*Graph, error) {
	if commRange <= 0 {
		return nil, fmt.Errorf("radio: non-positive range %g", commRange)
	}
	if down != nil && len(down) != len(pos) {
		return nil, fmt.Errorf("radio: down length %d != positions %d", len(down), len(pos))
	}
	n := len(pos)
	g := &Graph{
		n:     n,
		adj:   make([][]int, n),
		down:  make([]bool, n),
		rng:   commRange,
		stamp: stamp,
	}
	if down != nil {
		copy(g.down, down)
	}
	r2 := commRange * commRange
	for i := 0; i < n; i++ {
		if g.down[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if g.down[j] {
				continue
			}
			if pos[i].DistSq(pos[j]) <= r2 {
				g.adj[i] = append(g.adj[i], j)
				g.adj[j] = append(g.adj[j], i)
			}
		}
	}
	return g, nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// Stamp returns the snapshot generation counter supplied at build time.
func (g *Graph) Stamp() uint64 { return g.stamp }

// Range returns the communication range used to build the snapshot.
func (g *Graph) Range() float64 { return g.rng }

// Up reports whether node i was up when the snapshot was taken.
func (g *Graph) Up(i int) bool { return i >= 0 && i < g.n && !g.down[i] }

// Neighbors returns the nodes within range of i. The returned slice is
// owned by the graph; callers must not mutate it.
func (g *Graph) Neighbors(i int) []int {
	if i < 0 || i >= g.n {
		return nil
	}
	return g.adj[i]
}

// Connected reports whether i and j share an edge.
func (g *Graph) Connected(i, j int) bool {
	for _, v := range g.Neighbors(i) {
		if v == j {
			return true
		}
	}
	return false
}

// Unreachable is the hop distance reported for unreachable pairs.
const Unreachable = -1

// HopsFrom runs BFS from src and returns the hop distance to every node
// (Unreachable where no path exists, 0 for src itself). A down source
// yields all-Unreachable.
func (g *Graph) HopsFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= g.n || g.down[src] {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Hops returns the BFS hop distance from src to dst, or Unreachable.
func (g *Graph) Hops(src, dst int) int {
	if src == dst {
		if g.Up(src) {
			return 0
		}
		return Unreachable
	}
	return g.HopsFrom(src)[dst]
}

// NextHop returns the neighbour of src that lies on a shortest path to
// dst, or Unreachable when dst cannot be reached. Ties break toward the
// lowest node id so routing is deterministic. This is the hop-by-hop
// forwarding primitive: each relay re-invokes it on the current snapshot,
// which lets in-flight messages adapt to topology changes the way a
// reactive MANET routing protocol would after a route repair.
func (g *Graph) NextHop(src, dst int) int {
	if src == dst || !g.Up(src) || !g.Up(dst) {
		return Unreachable
	}
	// BFS from dst: the neighbour of src with the smallest distance to
	// dst is the next hop.
	dist := g.HopsFrom(dst)
	best, bestDist := Unreachable, int(^uint(0)>>1)
	for _, v := range g.adj[src] {
		if d := dist[v]; d != Unreachable && d < bestDist {
			best, bestDist = v, d
		}
	}
	return best
}

// WithinTTL returns every node whose hop distance from src is between 1
// and ttl inclusive — the set a TTL-scoped flood from src can reach.
func (g *Graph) WithinTTL(src, ttl int) []int {
	if ttl <= 0 {
		return nil
	}
	dist := g.HopsFrom(src)
	var out []int
	for i, d := range dist {
		if i != src && d != Unreachable && d <= ttl {
			out = append(out, i)
		}
	}
	return out
}

// ComponentOf returns all nodes in src's connected component, including
// src itself. A down src yields nil.
func (g *Graph) ComponentOf(src int) []int {
	dist := g.HopsFrom(src)
	var out []int
	for i, d := range dist {
		if d != Unreachable {
			out = append(out, i)
		}
	}
	return out
}

// Degree returns the number of neighbours of i.
func (g *Graph) Degree(i int) int { return len(g.Neighbors(i)) }
