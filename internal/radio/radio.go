// Package radio models wireless connectivity as a unit-disk graph: two
// hosts can exchange frames iff their Euclidean distance is at most the
// communication range (250 m in the paper's Table 1). The package produces
// adjacency snapshots from node positions and answers the connectivity
// queries the network layer needs: neighbour sets, BFS hop distances, and
// next-hop selection for hop-by-hop unicast routing.
//
// The snapshot is stored in a flat CSR (compressed sparse row) layout and
// carries a per-snapshot route cache: the first NextHop query toward a
// destination runs one BFS from that destination and memoizes the hop
// distances; every later hop of every message to the same destination is
// an O(degree) scan over the source's neighbour list. The cache lives on
// the snapshot itself, so it is implicitly keyed by the snapshot stamp and
// can never serve distances from a stale topology. Graphs are not safe for
// concurrent use; like the rest of the simulator they live on a single
// kernel goroutine.
package radio

import (
	"fmt"
	"slices"

	"github.com/manetlab/rpcc/internal/geo"
)

// Graph is an undirected connectivity snapshot over n nodes. Nodes marked
// down (disconnected by churn or depleted battery) have no edges.
type Graph struct {
	n     int
	off   []int32 // CSR row offsets, len n+1
	tgt   []int   // CSR neighbour ids, ascending per row
	down  []bool
	rng   float64 // communication range, metres
	stamp uint64  // snapshot generation, for cache invalidation upstream

	// Route cache: dist[dst] holds, once built, the BFS hop distance from
	// every node to dst (Unreachable = -1). Slices are recycled through
	// distPool across snapshot rebuilds by the owning GraphBuilder.
	cacheOn  bool
	dist     [][]int32
	built    []int32   // destinations with a table built this snapshot
	distPool [][]int32 // spare distance tables
	queue    []int32   // shared BFS scratch queue
	tableCap int       // max live tables (0 = unlimited), FIFO eviction

	// repairBuckets is the level-ordered relaxation queue reused by
	// PatchRoutes (see patch.go).
	repairBuckets [][]int32
}

// NewGraph builds a standalone snapshot from positions via a throwaway
// GraphBuilder. down may be nil (all up) or a slice of the same length
// flagging unreachable nodes. Hot callers that rebuild every topology
// refresh should hold a GraphBuilder instead so backing arrays are reused.
func NewGraph(pos []geo.Point, down []bool, commRange float64, stamp uint64) (*Graph, error) {
	return NewGraphBuilder().Build(pos, down, commRange, stamp)
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// Stamp returns the snapshot generation counter supplied at build time.
func (g *Graph) Stamp() uint64 { return g.stamp }

// Range returns the communication range used to build the snapshot.
func (g *Graph) Range() float64 { return g.rng }

// Up reports whether node i was up when the snapshot was taken.
func (g *Graph) Up(i int) bool { return i >= 0 && i < g.n && !g.down[i] }

// SetRouteCache enables or disables the per-destination route memoization
// (enabled by default). Disabling reverts NextHop and Hops to the pure
// per-call BFS the pre-cache implementation ran — the reference path the
// determinism regression tests compare against.
func (g *Graph) SetRouteCache(on bool) { g.cacheOn = on }

// RouteCacheEnabled reports whether route memoization is active.
func (g *Graph) RouteCacheEnabled() bool { return g.cacheOn }

// Neighbors returns the nodes within range of i, ascending. The returned
// slice aliases the snapshot's CSR arrays; callers must not mutate it.
func (g *Graph) Neighbors(i int) []int {
	if i < 0 || i >= g.n {
		return nil
	}
	return g.tgt[g.off[i]:g.off[i+1]]
}

// Connected reports whether i and j share an edge. Neighbour rows are
// sorted, so this is a binary search rather than a linear scan.
func (g *Graph) Connected(i, j int) bool {
	if i < 0 || i >= g.n {
		return false
	}
	_, found := slices.BinarySearch(g.tgt[g.off[i]:g.off[i+1]], j)
	return found
}

// Unreachable is the hop distance reported for unreachable pairs.
const Unreachable = -1

// HopsFrom runs BFS from src and returns the hop distance to every node
// (Unreachable where no path exists, 0 for src itself). A down source
// yields all-Unreachable. The result is freshly allocated and owned by the
// caller; the forwarding hot path uses the memoized route tables instead.
func (g *Graph) HopsFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= g.n || g.down[src] {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// routeTo returns the memoized hop-distance table toward dst, building it
// with one BFS on first use this snapshot.
func (g *Graph) routeTo(dst int) []int32 {
	if g.dist == nil {
		g.dist = make([][]int32, g.n)
	}
	if d := g.dist[dst]; d != nil {
		return d
	}
	if g.tableCap > 0 && len(g.built) >= g.tableCap {
		// FIFO eviction keeps the live-table population bounded and the
		// eviction order deterministic.
		old := g.built[0]
		g.built = g.built[1:]
		g.distPool = append(g.distPool, g.dist[old])
		g.dist[old] = nil
	}
	var d []int32
	if n := len(g.distPool); n > 0 {
		d = g.distPool[n-1]
		g.distPool = g.distPool[:n-1]
		d = d[:g.n]
	} else {
		d = make([]int32, g.n)
	}
	for i := range d {
		d[i] = Unreachable
	}
	// BFS from dst over the CSR rows, reusing the shared scratch queue.
	d[dst] = 0
	q := g.queue[:0]
	q = append(q, int32(dst))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := d[u]
		for _, v := range g.tgt[g.off[u]:g.off[u+1]] {
			if d[v] == Unreachable {
				d[v] = du + 1
				q = append(q, int32(v))
			}
		}
	}
	g.queue = q
	g.dist[dst] = d
	g.built = append(g.built, int32(dst))
	return d
}

// resetRoutes returns every distance table built for this snapshot to the
// pool; the builder calls it before reusing the graph for a new topology.
func (g *Graph) resetRoutes() {
	for _, dst := range g.built {
		g.distPool = append(g.distPool, g.dist[dst])
		g.dist[dst] = nil
	}
	g.built = g.built[:0]
}

// Hops returns the BFS hop distance from src to dst, or Unreachable. With
// the route cache enabled the answer comes from (and warms) dst's memoized
// table; otherwise an early-exit BFS from src stops as soon as dst is
// labelled instead of computing the full all-distances-from-src table.
func (g *Graph) Hops(src, dst int) int {
	if src == dst {
		if g.Up(src) {
			return 0
		}
		return Unreachable
	}
	if !g.Up(src) || !g.Up(dst) {
		return Unreachable
	}
	if g.cacheOn {
		return int(g.routeTo(dst)[src])
	}
	return g.hopsEarlyExit(src, dst)
}

// hopsEarlyExit is the uncached Hops path: BFS from src, returning the
// moment dst is reached. Scratch comes from the graph's pooled buffers so
// the query still does not allocate.
func (g *Graph) hopsEarlyExit(src, dst int) int {
	var d []int32
	if n := len(g.distPool); n > 0 {
		d = g.distPool[n-1]
		g.distPool = g.distPool[:n-1]
		d = d[:g.n]
	} else {
		d = make([]int32, g.n)
	}
	defer func() { g.distPool = append(g.distPool, d) }()
	for i := range d {
		d[i] = Unreachable
	}
	d[src] = 0
	q := g.queue[:0]
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := d[u]
		for _, v := range g.tgt[g.off[u]:g.off[u+1]] {
			if d[v] == Unreachable {
				if v == dst {
					g.queue = q
					return int(du) + 1
				}
				d[v] = du + 1
				q = append(q, int32(v))
			}
		}
	}
	g.queue = q
	return Unreachable
}

// NextHop returns the neighbour of src that lies on a shortest path to
// dst, or Unreachable when dst cannot be reached. Ties break toward the
// lowest node id so routing is deterministic. This is the hop-by-hop
// forwarding primitive: each relay re-invokes it on the current snapshot,
// which lets in-flight messages adapt to topology changes the way a
// reactive MANET routing protocol would after a route repair.
//
// With the route cache (the default) the BFS tree for dst is computed once
// per snapshot and every call is an O(degree(src)) scan; distances are
// identical to the uncached per-call BFS, so routes, tie-breaks and
// therefore simulation outputs do not change.
func (g *Graph) NextHop(src, dst int) int {
	if src == dst || !g.Up(src) || !g.Up(dst) {
		return Unreachable
	}
	if g.cacheOn {
		dist := g.routeTo(dst)
		best, bestDist := Unreachable, int32(^uint32(0)>>1)
		for _, v := range g.Neighbors(src) {
			if d := dist[v]; d != Unreachable && d < bestDist {
				best, bestDist = v, d
			}
		}
		return best
	}
	// Reference path: BFS from dst on every call, exactly as the original
	// implementation did.
	dist := g.HopsFrom(dst)
	best, bestDist := Unreachable, int(^uint(0)>>1)
	for _, v := range g.Neighbors(src) {
		if d := dist[v]; d != Unreachable && d < bestDist {
			best, bestDist = v, d
		}
	}
	return best
}

// WithinTTL returns every node whose hop distance from src is between 1
// and ttl inclusive — the set a TTL-scoped flood from src can reach.
func (g *Graph) WithinTTL(src, ttl int) []int {
	if ttl <= 0 {
		return nil
	}
	dist := g.HopsFrom(src)
	var out []int
	for i, d := range dist {
		if i != src && d != Unreachable && d <= ttl {
			out = append(out, i)
		}
	}
	return out
}

// ComponentOf returns all nodes in src's connected component, including
// src itself. A down src yields nil.
func (g *Graph) ComponentOf(src int) []int {
	dist := g.HopsFrom(src)
	var out []int
	for i, d := range dist {
		if d != Unreachable {
			out = append(out, i)
		}
	}
	return out
}

// Degree returns the number of neighbours of i.
func (g *Graph) Degree(i int) int { return len(g.Neighbors(i)) }

// validate checks the inputs shared by every build path.
func validate(pos []geo.Point, down []bool, commRange float64) error {
	if commRange <= 0 {
		return fmt.Errorf("radio: non-positive range %g", commRange)
	}
	if down != nil && len(down) != len(pos) {
		return fmt.Errorf("radio: down length %d != positions %d", len(down), len(pos))
	}
	return nil
}
