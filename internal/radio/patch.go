package radio

import "fmt"

// This file is the incremental half of the radio layer: the kinetic
// topology plane (internal/netsim) maintains geometric adjacency rows
// between snapshots and asks the builder to repack the CSR from them
// without discarding the route cache, then repairs each memoized
// distance table against the exact set of CSR edge changes instead of
// rebuilding it from scratch.
//
// The repair is the textbook two-phase dynamic-BFS update for unit
// weights:
//
//   Phase 1 (increase): starting from the endpoints of removed edges,
//   a vertex keeps its distance only while it has a witness neighbour
//   one level closer to the destination; vertices without one are set
//   to Unreachable and their dependants re-checked, to a fixpoint.
//   Witness chains are grounded at the destination by induction on
//   level, so every distance that survives phase 1 is achievable in
//   the new graph.
//
//   Phase 2 (decrease): a multi-source level-ordered BFS relaxation
//   seeded by the endpoints of added edges and by the surviving
//   frontier around the invalidated region restores exact distances.
//
// Final distances equal a fresh BFS on the new graph, so NextHop —
// which reads only distances plus the current adjacency — answers
// exactly as if the table had been rebuilt. The property tests in
// patch_test.go pin that equality on random mobile histories.

// EdgeDiff is one undirected CSR edge change between two snapshots.
type EdgeDiff struct {
	U, V int32
	Add  bool
}

// RebuildFromRows repacks the snapshot's CSR from per-node geometric
// neighbour rows (sorted ascending, including rows for down nodes),
// filtering out edges with a down endpoint exactly as the full builds
// do — and, unlike Build, it keeps the memoized route tables alive so
// the caller can repair them with PatchRoutes. The first call (or a
// call with a different node count) behaves like a full build with an
// empty cache.
func (b *GraphBuilder) RebuildFromRows(n int, row func(i int) []int32, down []bool, commRange float64, stamp uint64) (*Graph, error) {
	if commRange <= 0 {
		return nil, fmt.Errorf("radio: non-positive range %g", commRange)
	}
	if down != nil && len(down) != n {
		return nil, fmt.Errorf("radio: down length %d != nodes %d", len(down), n)
	}
	g := &b.g
	if g.n != n {
		g.dist = nil
		g.built = g.built[:0]
		g.distPool = nil
		g.n = n
		g.cacheOn = true
	}
	g.rng = commRange
	g.stamp = stamp
	g.off = resizeI32(g.off, n+1)
	if cap(g.down) < n {
		g.down = make([]bool, n)
	}
	g.down = g.down[:n]
	if down != nil {
		copy(g.down, down)
	} else {
		clear(g.down)
	}
	if cap(g.queue) < n {
		g.queue = make([]int32, 0, n)
	}
	tgt := g.tgt[:0]
	for i := 0; i < n; i++ {
		g.off[i] = int32(len(tgt))
		if g.down[i] {
			continue
		}
		for _, j := range row(i) {
			if !g.down[j] {
				tgt = append(tgt, int(j))
			}
		}
	}
	g.off[n] = int32(len(tgt))
	g.tgt = tgt
	return g, nil
}

// repairLimit caps how much of a table phase 1 may invalidate before the
// repair is abandoned and the table dropped for lazy rebuild: past a
// quarter of the graph a fresh BFS is cheaper than the two-phase update.
func (g *Graph) repairLimit() int { return g.n/4 + 8 }

// PatchRoutes repairs every memoized distance table against the CSR edge
// changes applied by the latest RebuildFromRows. It must be called after
// the repack (both phases walk the new adjacency). Tables whose affected
// region exceeds the repair limit are dropped and rebuilt lazily on next
// use. Returns how many tables were repaired in place and how many were
// dropped.
func (g *Graph) PatchRoutes(diffs []EdgeDiff) (repaired, dropped int) {
	if len(diffs) == 0 || len(g.built) == 0 {
		return 0, 0
	}
	kept := g.built[:0]
	for _, dst := range g.built {
		d := g.dist[dst]
		if g.repairTable(d, diffs) {
			kept = append(kept, dst)
			repaired++
		} else {
			g.distPool = append(g.distPool, d)
			g.dist[dst] = nil
			dropped++
		}
	}
	g.built = kept
	return repaired, dropped
}

// repairTable applies the two-phase update to one distance table.
// Returns false when the affected region exceeded the repair limit (the
// table's contents are then unspecified and it must be dropped).
func (g *Graph) repairTable(d []int32, diffs []EdgeDiff) bool {
	limit := g.repairLimit()
	invalidated := 0

	// Phase 1: over-invalidate. Work stack seeded by removed-edge
	// endpoints; a vertex is re-pushed whenever a potential witness of
	// its level is invalidated, so the loop reaches a fixpoint.
	stack := g.queue[:0]
	for _, diff := range diffs {
		if !diff.Add {
			stack = append(stack, diff.U, diff.V)
		}
	}
	var invalid []int32
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		dx := d[x]
		if dx <= 0 {
			continue // destination (0) or already invalidated (-1)
		}
		witness := false
		for _, w := range g.tgt[g.off[x]:g.off[x+1]] {
			if d[w] == dx-1 {
				witness = true
				break
			}
		}
		if witness {
			continue
		}
		d[x] = Unreachable
		invalid = append(invalid, x)
		if invalidated++; invalidated > limit {
			g.queue = stack[:0]
			return false
		}
		for _, y := range g.tgt[g.off[x]:g.off[x+1]] {
			if d[int32(y)] == dx+1 {
				stack = append(stack, int32(y))
			}
		}
	}
	g.queue = stack[:0]

	// Phase 2: level-ordered relaxation from added-edge endpoints and
	// from the surviving frontier around the invalidated region.
	if cap(g.repairBuckets) == 0 {
		g.repairBuckets = make([][]int32, 0, 16)
	}
	buckets := g.repairBuckets[:0]
	push := func(x int32, level int32) {
		for int(level) >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[level] = append(buckets[level], x)
	}
	for _, diff := range diffs {
		if diff.Add {
			if dv := d[diff.U]; dv >= 0 {
				push(diff.U, dv)
			}
			if dv := d[diff.V]; dv >= 0 {
				push(diff.V, dv)
			}
		}
	}
	for _, x := range invalid {
		for _, w := range g.tgt[g.off[x]:g.off[x+1]] {
			if dv := d[w]; dv >= 0 {
				push(int32(w), dv)
			}
		}
	}
	for level := 0; level < len(buckets); level++ {
		for qi := 0; qi < len(buckets[level]); qi++ {
			x := buckets[level][qi]
			if d[x] != int32(level) {
				continue // stale entry: x was relaxed to a lower level
			}
			for _, y := range g.tgt[g.off[x]:g.off[x+1]] {
				if dy := d[y]; dy < 0 || dy > int32(level)+1 {
					d[y] = int32(level) + 1
					push(int32(y), int32(level)+1)
				}
			}
		}
		buckets[level] = buckets[level][:0]
	}
	g.repairBuckets = buckets[:0]
	return true
}

// SetRouteTableCap bounds how many destination tables the route cache
// keeps alive at once (0, the default, is unlimited — the behaviour every
// pre-existing path sees). When the cap is reached the oldest table is
// evicted FIFO, which keeps eviction deterministic. Large kinetic runs
// set a cap so persistent tables cannot grow to n² memory.
func (g *Graph) SetRouteTableCap(cap int) { g.tableCap = cap }

// RouteTables returns how many memoized distance tables are currently
// built — the population PatchRoutes repairs each snapshot.
func (g *Graph) RouteTables() int { return len(g.built) }
