package radio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/manetlab/rpcc/internal/geo"
)

// randomScenario draws a random node layout with some nodes down.
func randomScenario(r *rand.Rand, terrain geo.Terrain) ([]geo.Point, []bool) {
	n := 10 + r.Intn(60)
	pts := make([]geo.Point, n)
	down := make([]bool, n)
	for i := range pts {
		pts[i] = terrain.RandomPoint(r)
		down[i] = r.Intn(8) == 0
	}
	return pts, down
}

// sameGraph asserts two snapshots expose identical adjacency.
func sameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len %d != %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degree %d != %d", i, len(na), len(nb))
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("node %d: neighbours %v != %v", i, na, nb)
			}
		}
	}
}

// TestGridMatchesPairwiseProperty: the spatial-grid build must produce the
// byte-identical adjacency (same sets, same ascending order) as the O(n²)
// reference sweep, including down-node handling.
func TestGridMatchesPairwiseProperty(t *testing.T) {
	terrain, _ := geo.NewTerrain(1500, 1500)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts, down := randomScenario(r, terrain)
		grid, err := NewGraphBuilder().Build(pts, down, 250, 1)
		if err != nil {
			return false
		}
		ref, err := NewGraphBuilder().BuildPairwise(pts, down, 250, 1)
		if err != nil {
			return false
		}
		sameGraph(t, ref, grid)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGridFallbackOnSparseSpread: positions flung kilometres apart trip
// the grid-size guard; the fallback must still produce the reference
// adjacency.
func TestGridFallbackOnSparseSpread(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 1e6, Y: 1e6}, {X: 1e6 + 150, Y: 1e6}}
	grid, err := NewGraph(pts, nil, 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewGraphBuilder().BuildPairwise(pts, nil, 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, ref, grid)
	if !grid.Connected(0, 1) || !grid.Connected(2, 3) || grid.Connected(1, 2) {
		t.Fatal("sparse-spread adjacency wrong")
	}
}

// TestBuilderReuseAcrossRebuilds: one builder rebuilt over changing
// topologies must match a fresh build every time, and must reset the
// route cache so no stale distance leaks across snapshots.
func TestBuilderReuseAcrossRebuilds(t *testing.T) {
	terrain, _ := geo.NewTerrain(1500, 1500)
	r := rand.New(rand.NewSource(7))
	b := NewGraphBuilder()
	for round := 0; round < 25; round++ {
		pts, down := randomScenario(r, terrain)
		g, err := b.Build(pts, down, 250, uint64(round))
		if err != nil {
			t.Fatal(err)
		}
		if g.Stamp() != uint64(round) {
			t.Fatalf("stamp = %d, want %d", g.Stamp(), round)
		}
		fresh, err := NewGraph(pts, down, 250, uint64(round))
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, fresh, g)
		// Exercise the route cache on this snapshot; the next Build must
		// not serve these distances again.
		n := g.Len()
		for trial := 0; trial < 10; trial++ {
			src, dst := r.Intn(n), r.Intn(n)
			if got, want := g.Hops(src, dst), fresh.Hops(src, dst); got != want {
				t.Fatalf("round %d: Hops(%d,%d) = %d, want %d", round, src, dst, got, want)
			}
			if got, want := g.NextHop(src, dst), fresh.NextHop(src, dst); got != want {
				t.Fatalf("round %d: NextHop(%d,%d) = %d, want %d", round, src, dst, got, want)
			}
		}
	}
}

// TestRouteCacheMatchesUncachedProperty: NextHop and Hops with the route
// cache must equal the pure per-call BFS on random graphs and pairs — the
// property that makes the memoization behaviourally invisible.
func TestRouteCacheMatchesUncachedProperty(t *testing.T) {
	terrain, _ := geo.NewTerrain(1500, 1500)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts, down := randomScenario(r, terrain)
		cached, err := NewGraph(pts, down, 250, 0)
		if err != nil {
			return false
		}
		uncached, err := NewGraph(pts, down, 250, 0)
		if err != nil {
			return false
		}
		uncached.SetRouteCache(false)
		if cached.RouteCacheEnabled() == uncached.RouteCacheEnabled() {
			t.Fatal("SetRouteCache(false) did not disable the cache")
		}
		n := cached.Len()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if got, want := cached.NextHop(src, dst), uncached.NextHop(src, dst); got != want {
					t.Errorf("NextHop(%d,%d): cached %d, uncached %d", src, dst, got, want)
					return false
				}
				if got, want := cached.Hops(src, dst), uncached.Hops(src, dst); got != want {
					t.Errorf("Hops(%d,%d): cached %d, uncached %d", src, dst, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestHopsAgreesWithHopsFrom: both Hops paths (cached table, early-exit
// BFS) must agree with the full HopsFrom table.
func TestHopsAgreesWithHopsFrom(t *testing.T) {
	terrain, _ := geo.NewTerrain(1000, 1000)
	r := rand.New(rand.NewSource(3))
	pts, down := randomScenario(r, terrain)
	g, err := NewGraph(pts, down, 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cache := range []bool{true, false} {
		g.SetRouteCache(cache)
		for src := 0; src < g.Len(); src++ {
			dist := g.HopsFrom(src)
			for dst := 0; dst < g.Len(); dst++ {
				want := dist[dst]
				if src == dst && g.Up(src) {
					want = 0
				}
				if got := g.Hops(src, dst); got != want {
					t.Fatalf("cache=%v Hops(%d,%d) = %d, want %d", cache, src, dst, got, want)
				}
			}
		}
	}
}

// TestConnectedMatchesNeighborMembership: the binary-search Connected must
// agree with naive membership over the neighbour rows.
func TestConnectedMatchesNeighborMembership(t *testing.T) {
	terrain, _ := geo.NewTerrain(1200, 1200)
	r := rand.New(rand.NewSource(11))
	pts, down := randomScenario(r, terrain)
	g, err := NewGraph(pts, down, 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len(); i++ {
		want := map[int]bool{}
		for _, v := range g.Neighbors(i) {
			want[v] = true
		}
		for j := 0; j < g.Len(); j++ {
			if got := g.Connected(i, j); got != want[j] {
				t.Fatalf("Connected(%d,%d) = %v, want %v", i, j, got, want[j])
			}
		}
	}
}

// TestHotQueriesDoNotAllocate pins the zero-alloc contract: once a
// snapshot's route table toward a destination is warm, NextHop and Hops
// allocate nothing, and neither does the uncached early-exit Hops.
func TestHotQueriesDoNotAllocate(t *testing.T) {
	terrain, _ := geo.NewTerrain(1500, 1500)
	r := rand.New(rand.NewSource(5))
	pts := make([]geo.Point, 50)
	for i := range pts {
		pts[i] = terrain.RandomPoint(r)
	}
	g, err := NewGraph(pts, nil, 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.NextHop(0, 49) // warm dst 49's table
	if avg := testing.AllocsPerRun(100, func() {
		g.NextHop(0, 49)
		g.Hops(3, 49)
		g.Connected(0, 1)
	}); avg != 0 {
		t.Errorf("warm cached queries allocate %.1f/op, want 0", avg)
	}
	g.SetRouteCache(false)
	g.Hops(0, 49) // let the early-exit path size its scratch
	if avg := testing.AllocsPerRun(100, func() {
		g.Hops(0, 49)
	}); avg != 0 {
		t.Errorf("early-exit Hops allocates %.1f/op, want 0", avg)
	}
}

// TestBuilderRebuildDoesNotAllocate: steady-state rebuilds over same-size
// fields must reuse every backing array.
func TestBuilderRebuildDoesNotAllocate(t *testing.T) {
	terrain, _ := geo.NewTerrain(1500, 1500)
	r := rand.New(rand.NewSource(9))
	const n = 50
	pts := make([]geo.Point, n)
	b := NewGraphBuilder()
	redraw := func() {
		for i := range pts {
			pts[i] = terrain.RandomPoint(r)
		}
	}
	redraw()
	if _, err := b.Build(pts, nil, 250, 0); err != nil {
		t.Fatal(err)
	}
	// A couple of warm-up rounds let tgt reach its high-water capacity.
	for i := 0; i < 5; i++ {
		redraw()
		if _, err := b.Build(pts, nil, 250, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		redraw()
		if _, err := b.Build(pts, nil, 250, 1); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.5 {
		t.Errorf("steady-state rebuild allocates %.2f/op, want ~0", avg)
	}
}
