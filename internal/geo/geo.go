// Package geo provides the 2-D geometry primitives used by the MANET
// simulator: points in metres, rectangular terrains, and the handful of
// vector operations mobility and radio models need.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position on the simulation plane, in metres.
type Point struct {
	X, Y float64
}

// String renders the point for traces, e.g. "(731.2, 48.0)".
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns the point scaled componentwise by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// DistSq returns the squared distance; radio-range checks use it to avoid
// the square root on the hot path.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q. t outside
// [0,1] extrapolates, which callers must avoid for bounded terrains.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Terrain is the rectangular simulation field with its origin at (0,0).
// The paper's default is a 1500 m x 1500 m flatland.
type Terrain struct {
	Width, Height float64
}

// NewTerrain constructs a terrain, returning an error for non-positive
// dimensions.
func NewTerrain(width, height float64) (Terrain, error) {
	if width <= 0 || height <= 0 {
		return Terrain{}, fmt.Errorf("geo: non-positive terrain %gx%g", width, height)
	}
	return Terrain{Width: width, Height: height}, nil
}

// Contains reports whether p lies inside the terrain (boundary inclusive).
func (t Terrain) Contains(p Point) bool {
	return p.X >= 0 && p.X <= t.Width && p.Y >= 0 && p.Y <= t.Height
}

// Clamp returns p moved to the nearest point inside the terrain.
func (t Terrain) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), t.Width),
		Y: math.Min(math.Max(p.Y, 0), t.Height),
	}
}

// RandomPoint draws a uniform point inside the terrain from r.
func (t Terrain) RandomPoint(r *rand.Rand) Point {
	return Point{X: r.Float64() * t.Width, Y: r.Float64() * t.Height}
}

// Center returns the terrain midpoint.
func (t Terrain) Center() Point { return Point{X: t.Width / 2, Y: t.Height / 2} }

// Area returns the terrain area in square metres.
func (t Terrain) Area() float64 { return t.Width * t.Height }

// CellIndex maps p to the index of a square grid cell of the given side
// length, row-major. Mobility uses it to detect "subnet" crossings: the
// paper counts a peer as having moved when it crosses from one region of
// the field to another (the N_m statistic feeding the PMR coefficient).
func (t Terrain) CellIndex(p Point, cell float64) int {
	if cell <= 0 {
		return 0
	}
	cols := int(math.Ceil(t.Width / cell))
	if cols < 1 {
		cols = 1
	}
	rows := int(math.Ceil(t.Height / cell))
	if rows < 1 {
		rows = 1
	}
	cx := int(p.X / cell)
	cy := int(p.Y / cell)
	cx = min(max(cx, 0), cols-1)
	cy = min(max(cy, 0), rows-1)
	return cy*cols + cx
}
