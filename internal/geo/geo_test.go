package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative quadrant", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist = %g, want %g", got, tt.want)
			}
			if got := tt.p.DistSq(tt.q); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Errorf("DistSq = %g, want %g", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestNewTerrainValidation(t *testing.T) {
	if _, err := NewTerrain(0, 100); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewTerrain(100, -1); err == nil {
		t.Error("negative height accepted")
	}
	tr, err := NewTerrain(1500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Area() != 1500*1500 {
		t.Errorf("Area = %g", tr.Area())
	}
}

func TestTerrainContainsAndClamp(t *testing.T) {
	tr, _ := NewTerrain(100, 50)
	tests := []struct {
		p      Point
		inside bool
	}{
		{Point{0, 0}, true},
		{Point{100, 50}, true},
		{Point{50, 25}, true},
		{Point{-1, 25}, false},
		{Point{50, 51}, false},
		{Point{101, 25}, false},
	}
	for _, tt := range tests {
		if got := tr.Contains(tt.p); got != tt.inside {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.inside)
		}
		if c := tr.Clamp(tt.p); !tr.Contains(c) {
			t.Errorf("Clamp(%v) = %v outside terrain", tt.p, c)
		}
	}
}

func TestClampIdempotentProperty(t *testing.T) {
	tr, _ := NewTerrain(1500, 1500)
	f := func(x, y int32) bool {
		c := tr.Clamp(Point{float64(x), float64(y)})
		return tr.Contains(c) && tr.Clamp(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPointInsideTerrain(t *testing.T) {
	tr, _ := NewTerrain(1500, 1500)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p := tr.RandomPoint(r); !tr.Contains(p) {
			t.Fatalf("RandomPoint produced %v outside terrain", p)
		}
	}
}

func TestCenter(t *testing.T) {
	tr, _ := NewTerrain(1500, 900)
	if c := tr.Center(); c != (Point{750, 450}) {
		t.Errorf("Center = %v", c)
	}
}

func TestCellIndex(t *testing.T) {
	tr, _ := NewTerrain(100, 100)
	tests := []struct {
		p    Point
		cell float64
		want int
	}{
		{Point{5, 5}, 50, 0},
		{Point{55, 5}, 50, 1},
		{Point{5, 55}, 50, 2},
		{Point{55, 55}, 50, 3},
		{Point{100, 100}, 50, 3}, // boundary clamps into last column
		{Point{5, 5}, 0, 0},      // degenerate cell size
	}
	for _, tt := range tests {
		if got := tr.CellIndex(tt.p, tt.cell); got != tt.want {
			t.Errorf("CellIndex(%v, %g) = %d, want %d", tt.p, tt.cell, got, tt.want)
		}
	}
}

func TestCellIndexNonNegativeProperty(t *testing.T) {
	tr, _ := NewTerrain(1500, 1500)
	f := func(x, y uint16, cell uint8) bool {
		p := tr.Clamp(Point{float64(x), float64(y)})
		return tr.CellIndex(p, float64(cell)+1) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
