package oracle

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
)

// Live judging: the wire subsystem (internal/wire) runs the same engine
// over real UDP sockets, where the omniscient in-run Model cannot sit on
// the event path — deliveries happen on many goroutines across many
// kernels, and wall clocks replace the virtual clock. Instead, a
// LiveRecorder collects two thread-safe ledgers during the run — every
// commit at an item's owner and every answer served anywhere — and
// JudgeLive replays the Model's rules over them afterwards.
//
// The rules are the sim oracle's, restated over wall time:
//
//  1. Torn: a served copy's value must equal the canonical content for
//     its (item, version).
//  2. Uncommitted: a served version must exist in its item's commit
//     history, committed no later than the answer (plus slack for clock
//     and ledger-ordering skew).
//  3. Staleness envelope: an SC/DC answer must be no older than the
//     version current at (answer time − envelope − slack − inflate).
//     Inflate widens every envelope for real-network soundness: UDP
//     delivery, scheduler jitter and timer coalescing add latencies the
//     protocol's virtual-time analysis never sees.
//  4. Monotone reads: per (node, item), served versions never regress.
//
// Reachability rules (overreach/underreach) need the topology oracle and
// do not apply on a single loopback segment.

// LiveCommit is one committed write at an item's owner.
type LiveCommit struct {
	Item    data.ItemID
	Version data.Version
	// At is the commit instant, measured from the recorder epoch.
	At time.Duration
}

// LiveAnswer is one served answer observed at any node.
type LiveAnswer struct {
	Node  int
	Item  data.ItemID
	Level consistency.Level
	// Served is the full served copy, so torn detection can compare the
	// actual content against the canonical value.
	Served data.Copy
	// At is the answer instant, measured from the recorder epoch.
	At time.Duration
}

// LiveRecorder accumulates commit and answer ledgers during a live run.
// All methods are safe for concurrent use; every node of an in-process
// cluster shares one recorder.
type LiveRecorder struct {
	mu      sync.Mutex
	epoch   time.Time
	commits []LiveCommit
	answers []LiveAnswer
}

// NewLiveRecorder starts a recorder; the epoch is the construction
// instant and all recorded times are offsets from it.
func NewLiveRecorder(epoch time.Time) *LiveRecorder {
	return &LiveRecorder{epoch: epoch}
}

// Commit records that item reached version at wall-clock instant at.
func (r *LiveRecorder) Commit(item data.ItemID, v data.Version, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commits = append(r.commits, LiveCommit{Item: item, Version: v, At: at.Sub(r.epoch)})
}

// Answer records a served answer at wall-clock instant at.
func (r *LiveRecorder) Answer(node int, item data.ItemID, level consistency.Level, served data.Copy, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.answers = append(r.answers, LiveAnswer{
		Node: node, Item: item, Level: level, Served: served, At: at.Sub(r.epoch),
	})
}

// Ledgers returns copies of the recorded commit and answer ledgers.
func (r *LiveRecorder) Ledgers() (commits []LiveCommit, answers []LiveAnswer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]LiveCommit(nil), r.commits...), append([]LiveAnswer(nil), r.answers...)
}

// LiveSpec parameterises live judging.
type LiveSpec struct {
	// Envelopes maps each audited consistency level to its staleness
	// bound; levels absent from the map (WC) skip the staleness rule.
	Envelopes map[consistency.Level]time.Duration
	// Slack forgives in-flight answers and ledger-ordering skew.
	Slack time.Duration
	// Inflate widens every envelope for real-network delay soundness.
	Inflate time.Duration
}

// Validate reports spec errors.
func (s LiveSpec) Validate() error {
	if s.Slack < 0 || s.Inflate < 0 {
		return fmt.Errorf("oracle: negative slack %v or inflate %v", s.Slack, s.Inflate)
	}
	for l, env := range s.Envelopes {
		if !l.Valid() {
			return fmt.Errorf("oracle: envelope for invalid level %d", l)
		}
		if env < 0 {
			return fmt.Errorf("oracle: negative envelope %v for %v", env, l)
		}
	}
	return nil
}

// timeline is one item's commit history, sorted by version.
type timeline struct {
	versions []data.Version
	times    []time.Duration
}

// commitTime returns when v was committed; version 0 (the pre-seeded
// placement copy) is committed at the epoch.
func (tl *timeline) commitTime(v data.Version) (time.Duration, bool) {
	if v == 0 {
		return 0, true
	}
	i := sort.Search(len(tl.versions), func(i int) bool { return tl.versions[i] >= v })
	if i < len(tl.versions) && tl.versions[i] == v {
		return tl.times[i], true
	}
	return 0, false
}

// versionAt returns the newest version committed at or before t.
func (tl *timeline) versionAt(t time.Duration) data.Version {
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
	if i == 0 {
		return 0
	}
	return tl.versions[i-1]
}

// JudgeLive replays the oracle rules over a live run's ledgers and
// returns every divergence found (empty means the run conformed).
func JudgeLive(commits []LiveCommit, answers []LiveAnswer, spec LiveSpec) ([]Divergence, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// Build per-item commit timelines. Commits arrive from one writer per
	// item, so versions are already increasing per item; sort defensively
	// anyway (ledger append order is cross-item).
	lines := make(map[data.ItemID]*timeline)
	for _, c := range commits {
		tl := lines[c.Item]
		if tl == nil {
			tl = &timeline{}
			lines[c.Item] = tl
		}
		tl.versions = append(tl.versions, c.Version)
		tl.times = append(tl.times, c.At)
	}
	for item, tl := range lines {
		idx := make([]int, len(tl.versions))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return tl.versions[idx[a]] < tl.versions[idx[b]] })
		vs := make([]data.Version, len(idx))
		ts := make([]time.Duration, len(idx))
		for i, j := range idx {
			vs[i], ts[i] = tl.versions[j], tl.times[j]
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				return nil, fmt.Errorf("oracle: item %d commit times regress (v%d at %v after v%d at %v)",
					item, vs[i], ts[i], vs[i-1], ts[i-1])
			}
		}
		tl.versions, tl.times = vs, ts
	}
	emptyLine := &timeline{}
	lineFor := func(item data.ItemID) *timeline {
		if tl := lines[item]; tl != nil {
			return tl
		}
		return emptyLine
	}

	// Judge answers in time order so the monotone watermark is causal.
	ordered := append([]LiveAnswer(nil), answers...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].At < ordered[b].At })

	type hostItem struct {
		node int
		item data.ItemID
	}
	watermark := make(map[hostItem]data.Version)

	var divs []Divergence
	for _, a := range ordered {
		d := Divergence{At: a.At, Node: a.Node, Item: a.Item, Level: a.Level.String(), Served: a.Served.Version}
		tl := lineFor(a.Item)

		switch {
		case a.Served.ID != a.Item || !a.Served.Consistent():
			d.Kind = DivTorn
			d.Detail = fmt.Sprintf("served copy of item %d value %q", a.Served.ID, a.Served.Value)
			divs = append(divs, d)
		default:
			committedAt, known := tl.commitTime(a.Served.Version)
			switch {
			case !known:
				d.Kind = DivUncommitted
				d.Detail = "version absent from the owner's commit ledger"
				divs = append(divs, d)
			case committedAt > a.At+spec.Slack:
				d.Kind = DivUncommitted
				d.Detail = fmt.Sprintf("committed at %v, after the answer", committedAt)
				divs = append(divs, d)
			default:
				if env, audited := spec.Envelopes[a.Level]; audited {
					horizon := a.At - env - spec.Slack - spec.Inflate
					if horizon > 0 {
						minOK := tl.versionAt(horizon)
						if a.Served.Version < minOK {
							d.Kind = DivStale
							d.MinOK = minOK
							divs = append(divs, d)
						}
					}
				}
			}
		}

		key := hostItem{a.Node, a.Item}
		if prev, ok := watermark[key]; ok && a.Served.Version < prev {
			divs = append(divs, Divergence{
				At: a.At, Node: a.Node, Item: a.Item, Kind: DivMonotone,
				Level: a.Level.String(), Served: a.Served.Version, MinOK: prev,
			})
		}
		if a.Served.Version > watermark[key] {
			watermark[key] = a.Served.Version
		}
	}
	return divs, nil
}
