package oracle

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
)

// Live judging: the wire subsystem (internal/wire) runs the same engine
// over real UDP sockets, where the omniscient in-run Model cannot sit on
// the event path — deliveries happen on many goroutines across many
// kernels, and wall clocks replace the virtual clock. Instead, a
// LiveRecorder collects two thread-safe ledgers during the run — every
// commit at an item's owner and every answer served anywhere — and
// JudgeLive replays the Model's rules over them afterwards.
//
// The rules are the sim oracle's, restated over wall time:
//
//  1. Torn: a served copy's value must equal the canonical content for
//     its (item, version).
//  2. Uncommitted: a served version must exist in its item's commit
//     history, committed no later than the answer (plus slack for clock
//     and ledger-ordering skew).
//  3. Staleness envelope: an SC/DC answer must be no older than the
//     version current at (answer time − envelope − slack − inflate).
//     Inflate widens every envelope for real-network soundness: UDP
//     delivery, scheduler jitter and timer coalescing add latencies the
//     protocol's virtual-time analysis never sees.
//  4. Monotone reads: per (node, item), served versions never regress.
//
// Reachability rules (overreach/underreach) need the topology oracle and
// do not apply on a single loopback segment.

// LiveCommit is one committed write at an item's owner.
type LiveCommit struct {
	Item    data.ItemID
	Version data.Version
	// At is the commit instant, measured from the recorder epoch.
	At time.Duration
}

// LiveAnswer is one served answer observed at any node.
type LiveAnswer struct {
	Node  int
	Item  data.ItemID
	Level consistency.Level
	// Served is the full served copy, so torn detection can compare the
	// actual content against the canonical value.
	Served data.Copy
	// At is the answer instant, measured from the recorder epoch.
	At time.Duration
}

// LiveRecorder accumulates commit and answer ledgers during a live run.
// All methods are safe for concurrent use; every node of an in-process
// cluster shares one recorder.
type LiveRecorder struct {
	mu      sync.Mutex
	epoch   time.Time
	commits []LiveCommit
	answers []LiveAnswer
}

// NewLiveRecorder starts a recorder; the epoch is the construction
// instant and all recorded times are offsets from it.
func NewLiveRecorder(epoch time.Time) *LiveRecorder {
	return &LiveRecorder{epoch: epoch}
}

// Commit records that item reached version at wall-clock instant at.
func (r *LiveRecorder) Commit(item data.ItemID, v data.Version, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commits = append(r.commits, LiveCommit{Item: item, Version: v, At: at.Sub(r.epoch)})
}

// Answer records a served answer at wall-clock instant at.
func (r *LiveRecorder) Answer(node int, item data.ItemID, level consistency.Level, served data.Copy, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.answers = append(r.answers, LiveAnswer{
		Node: node, Item: item, Level: level, Served: served, At: at.Sub(r.epoch),
	})
}

// Ledgers returns copies of the recorded commit and answer ledgers.
func (r *LiveRecorder) Ledgers() (commits []LiveCommit, answers []LiveAnswer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]LiveCommit(nil), r.commits...), append([]LiveAnswer(nil), r.answers...)
}

// LiveWindow is one scheduled adversity interval [Start, End): a
// partition cut, a daemon's down time, or any other period when
// invalidation/poll traffic demonstrably could not flow. Node restricts
// the window to one daemon; -1 applies it cluster-wide.
type LiveWindow struct {
	Start, End time.Duration
	Node       int
}

// LiveRestart records the completion instant of one daemon's cold
// restart. From At onward the node's knowledge epoch restarts: its
// placement re-warms from version 0, so staleness before the epoch is
// the schedule's fault, not the protocol's — and its served-version
// watermark resets, because monotone reads are a per-process session
// guarantee, not a cross-incarnation one.
type LiveRestart struct {
	Node int
	At   time.Duration
}

// LiveSpec parameterises live judging.
type LiveSpec struct {
	// Envelopes maps each audited consistency level to its staleness
	// bound; levels absent from the map (WC) skip the staleness rule.
	Envelopes map[consistency.Level]time.Duration
	// Slack forgives in-flight answers and ledger-ordering skew.
	Slack time.Duration
	// Inflate widens every envelope for real-network delay soundness.
	Inflate time.Duration
	// Windows lists the scheduled adversity intervals. The staleness
	// lookback horizon is extended past them: time spent inside an
	// applicable window is time the node provably could not learn, so it
	// does not count against the envelope. This is the same soundness
	// discipline as the sim oracle's partition awareness — forgive
	// exactly what the schedule explains, never more.
	Windows []LiveWindow
	// Restarts lists daemon cold-restart completions (see LiveRestart).
	Restarts []LiveRestart
}

// Validate reports spec errors.
func (s LiveSpec) Validate() error {
	if s.Slack < 0 || s.Inflate < 0 {
		return fmt.Errorf("oracle: negative slack %v or inflate %v", s.Slack, s.Inflate)
	}
	for l, env := range s.Envelopes {
		if !l.Valid() {
			return fmt.Errorf("oracle: envelope for invalid level %d", l)
		}
		if env < 0 {
			return fmt.Errorf("oracle: negative envelope %v for %v", env, l)
		}
	}
	for _, w := range s.Windows {
		if w.Start < 0 || w.End < w.Start {
			return fmt.Errorf("oracle: bad adversity window [%v,%v)", w.Start, w.End)
		}
		if w.Node < -1 {
			return fmt.Errorf("oracle: adversity window node %d (want >= -1)", w.Node)
		}
	}
	for _, r := range s.Restarts {
		if r.Node < 0 || r.At < 0 {
			return fmt.Errorf("oracle: bad restart record node %d at %v", r.Node, r.At)
		}
	}
	return nil
}

// horizonFor computes the staleness lookback horizon for an answer by
// node at time at with envelope env. The protocol is owed env (+slack
// +inflate) of *connected* time to propagate a version, so the horizon
// is the instant with that much clear (non-window) time between it and
// the answer: walk backward from the answer through the node's merged
// adversity windows, paying the lookback only out of the gaps.
func (s LiveSpec) horizonFor(node int, at time.Duration, env time.Duration) time.Duration {
	need := env + s.Slack + s.Inflate
	wins := make([]LiveWindow, 0, len(s.Windows))
	for _, w := range s.Windows {
		if (w.Node == -1 || w.Node == node) && w.Start < at && w.End > w.Start {
			wins = append(wins, w)
		}
	}
	sort.Slice(wins, func(a, b int) bool { return wins[a].End > wins[b].End })
	cur := at
	for _, w := range wins {
		end := w.End
		if end > cur {
			end = cur
		}
		if end <= w.Start {
			continue // fully absorbed by a later (already-walked) window
		}
		if gap := cur - end; gap >= need {
			return cur - need
		} else {
			need -= gap
		}
		cur = w.Start
	}
	return cur - need
}

// epochFor returns node's knowledge epoch at time at: the completion of
// its latest restart at or before at, or 0 for a never-restarted node.
func (s LiveSpec) epochFor(node int, at time.Duration) time.Duration {
	var epoch time.Duration
	for _, r := range s.Restarts {
		if r.Node == node && r.At <= at && r.At > epoch {
			epoch = r.At
		}
	}
	return epoch
}

// restartedBetween reports whether node completed a restart in (lo, hi].
func (s LiveSpec) restartedBetween(node int, lo, hi time.Duration) bool {
	for _, r := range s.Restarts {
		if r.Node == node && r.At > lo && r.At <= hi {
			return true
		}
	}
	return false
}

// timeline is one item's commit history, sorted by version.
type timeline struct {
	versions []data.Version
	times    []time.Duration
}

// commitTime returns when v was committed; version 0 (the pre-seeded
// placement copy) is committed at the epoch.
func (tl *timeline) commitTime(v data.Version) (time.Duration, bool) {
	if v == 0 {
		return 0, true
	}
	i := sort.Search(len(tl.versions), func(i int) bool { return tl.versions[i] >= v })
	if i < len(tl.versions) && tl.versions[i] == v {
		return tl.times[i], true
	}
	return 0, false
}

// versionAt returns the newest version committed at or before t.
func (tl *timeline) versionAt(t time.Duration) data.Version {
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
	if i == 0 {
		return 0
	}
	return tl.versions[i-1]
}

// JudgeLive replays the oracle rules over a live run's ledgers and
// returns every divergence found (empty means the run conformed).
func JudgeLive(commits []LiveCommit, answers []LiveAnswer, spec LiveSpec) ([]Divergence, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// Build per-item commit timelines. Commits arrive from one writer per
	// item, so versions are already increasing per item; sort defensively
	// anyway (ledger append order is cross-item).
	lines := make(map[data.ItemID]*timeline)
	for _, c := range commits {
		tl := lines[c.Item]
		if tl == nil {
			tl = &timeline{}
			lines[c.Item] = tl
		}
		tl.versions = append(tl.versions, c.Version)
		tl.times = append(tl.times, c.At)
	}
	for item, tl := range lines {
		idx := make([]int, len(tl.versions))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return tl.versions[idx[a]] < tl.versions[idx[b]] })
		vs := make([]data.Version, len(idx))
		ts := make([]time.Duration, len(idx))
		for i, j := range idx {
			vs[i], ts[i] = tl.versions[j], tl.times[j]
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				return nil, fmt.Errorf("oracle: item %d commit times regress (v%d at %v after v%d at %v)",
					item, vs[i], ts[i], vs[i-1], ts[i-1])
			}
		}
		tl.versions, tl.times = vs, ts
	}
	emptyLine := &timeline{}
	lineFor := func(item data.ItemID) *timeline {
		if tl := lines[item]; tl != nil {
			return tl
		}
		return emptyLine
	}

	// Judge answers in time order so the monotone watermark is causal.
	ordered := append([]LiveAnswer(nil), answers...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].At < ordered[b].At })

	type hostItem struct {
		node int
		item data.ItemID
	}
	type mark struct {
		v  data.Version
		at time.Duration
	}
	watermark := make(map[hostItem]mark)

	var divs []Divergence
	for _, a := range ordered {
		d := Divergence{At: a.At, Node: a.Node, Item: a.Item, Level: a.Level.String(), Served: a.Served.Version}
		tl := lineFor(a.Item)

		switch {
		case a.Served.ID != a.Item || !a.Served.Consistent():
			d.Kind = DivTorn
			d.Detail = fmt.Sprintf("served copy of item %d value %q", a.Served.ID, a.Served.Value)
			divs = append(divs, d)
		default:
			committedAt, known := tl.commitTime(a.Served.Version)
			switch {
			case !known:
				d.Kind = DivUncommitted
				d.Detail = "version absent from the owner's commit ledger"
				divs = append(divs, d)
			case committedAt > a.At+spec.Slack:
				d.Kind = DivUncommitted
				d.Detail = fmt.Sprintf("committed at %v, after the answer", committedAt)
				divs = append(divs, d)
			default:
				if env, audited := spec.Envelopes[a.Level]; audited {
					horizon := spec.horizonFor(a.Node, a.At, env)
					// Only judge staleness once the horizon clears the
					// node's knowledge epoch: before it, the node is still
					// within its post-start (or post-restart) warm-up, where
					// old versions are the schedule's doing. epoch 0 is the
					// original initial-warm forgiveness.
					if horizon > spec.epochFor(a.Node, a.At) {
						minOK := tl.versionAt(horizon)
						if a.Served.Version < minOK {
							d.Kind = DivStale
							d.MinOK = minOK
							divs = append(divs, d)
						}
					}
				}
			}
		}

		key := hostItem{a.Node, a.Item}
		prev, ok := watermark[key]
		if ok && spec.restartedBetween(a.Node, prev.at, a.At) {
			// A cold restart ends the read session: the incarnation that
			// made the old promise is gone, so the watermark resets.
			ok = false
			delete(watermark, key)
		}
		if ok && a.Served.Version < prev.v {
			divs = append(divs, Divergence{
				At: a.At, Node: a.Node, Item: a.Item, Kind: DivMonotone,
				Level: a.Level.String(), Served: a.Served.Version, MinOK: prev.v,
			})
		}
		if cur := watermark[key]; a.Served.Version >= cur.v {
			watermark[key] = mark{v: a.Served.Version, at: a.At}
		}
	}
	return divs, nil
}
