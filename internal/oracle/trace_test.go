package oracle

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	sc := Gates(1)[0].Scenario
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) == 0 {
		t.Fatal("gate scenario produced no divergences to trace")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sc, rep.Divergences); err != nil {
		t.Fatal(err)
	}
	got, divs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Fatalf("scenario round-trip mismatch:\n%+v\nvs\n%+v", got, sc)
	}
	if len(divs) != len(rep.Divergences) {
		t.Fatalf("divergence count = %d, want %d", len(divs), len(rep.Divergences))
	}
	for i := range divs {
		if divs[i].Kind != rep.Divergences[i].Kind || divs[i].Node != rep.Divergences[i].Node {
			t.Fatalf("divergence %d = %v, want %v", i, divs[i], rep.Divergences[i])
		}
	}
}

func TestTraceRejectsMalformed(t *testing.T) {
	for name, body := range map[string]string{
		"empty":        "",
		"no scenario":  `{"type":"divergence","kind":"stale"}`,
		"unknown type": `{"type":"mystery"}`,
		"bad json":     `{"type":`,
	} {
		if _, _, err := ReadTrace(bytes.NewBufferString(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReplayTestdataTraces replays every shrunk divergence trace shipped
// under testdata/: each must reproduce its recorded divergences exactly.
// These traces are the regression corpus for the bugs this package's
// mutants re-introduce (stale-push replay, ACK races, TTL drift, store
// regression): if a protocol change silently re-opens one, replay either
// diverges differently or stops diverging, and this test fails.
func TestReplayTestdataTraces(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no testdata traces found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sc, recorded, err := ReadTrace(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(recorded) == 0 {
				t.Fatal("trace records no divergences")
			}
			if _, err := Replay(sc, recorded); err != nil {
				t.Fatal(err)
			}
		})
	}
}
