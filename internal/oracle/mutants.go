package oracle

import (
	"fmt"
)

// Gate is one mutation-gate case: a scenario crafted so that the named
// mutant produces at least one divergence the oracle must catch, while
// the identical scenario with the mutant removed must be divergence-free
// (no false positives).
type Gate struct {
	Mutant   string
	Scenario Scenario
	// WantKinds lists divergence kinds at least one of which the mutant
	// run must produce.
	WantKinds []string
}

// Gates returns the full mutant catalogue, every case seeded from base.
// Each scenario's timing is derived from the Table 1 defaults (TTN 2min,
// TTR 90s, TTP 4min, InvTTL 3); see DESIGN.md §11 for the per-case
// timing arithmetic.
func Gates(base int64) []Gate {
	min := int64(60_000) // one minute in ms
	return []Gate{
		{
			// A duplicated, 12-minute-delayed UPDATE v1 replays at ~22:00,
			// four minutes after v2 committed. The mutant skips the
			// monotone and freshness guards, so the stale push renews the
			// relay's TTR and it resumes vouching for v1 until the
			// horizon. SEND_NEW is dropped throughout so the relay cannot
			// repair; the poller at node 9 sits 9 hops from the owner —
			// beyond the poll fallback TTL — so the relay is its only
			// authority. Clean runs reject the replay and those polls
			// simply fail.
			Mutant: "stale-update-replay",
			Scenario: Scenario{
				Name:     "gate-stale-update-replay",
				Seed:     base,
				Nodes:    10,
				Strategy: "rpcc",
				Mutant:   "stale-update-replay",

				HorizonMS: 25 * min,
				Warm:      []Placement{{Host: 2, Item: 0}, {Host: 9, Item: 0}},
				Relays:    []Placement{{Host: 2, Item: 0}},
				Commits:   []CommitEvent{{AtMS: 10 * min, Host: 0}, {AtMS: 18 * min, Host: 0}},
				Pollers:   []Poller{{Host: 9, Item: 0, Level: "SC", StartMS: 20_000, PeriodMS: 5_000}},
				Rules: []Rule{
					{Kind: "UPDATE", Version: 1, Item: 0, To: -1, Occurrence: 1, DelayMS: 12 * min, Dup: true},
					{Kind: "UPDATE", Version: 2, Item: 0, To: -1, Drop: true},
					{Kind: "SEND_NEW", Version: -1, Item: 0, To: -1, Drop: true},
				},
			},
			WantKinds: []string{DivStale},
		},
		{
			// The relay's refresh evidence (UPDATE and SEND_NEW) is cut
			// off after v1 commits. A correct relay lets its TTR lapse
			// and escalates its own queries to the owner; the mutant
			// treats "refreshed once" as "refreshed forever" and serves
			// its frozen v0 locally for the rest of the run.
			Mutant: "ignore-ttr",
			Scenario: Scenario{
				Name:     "gate-ignore-ttr",
				Seed:     base,
				Nodes:    4,
				Strategy: "rpcc",
				Mutant:   "ignore-ttr",

				HorizonMS: 14 * min,
				Warm:      []Placement{{Host: 1, Item: 0}},
				Relays:    []Placement{{Host: 1, Item: 0}},
				Commits:   []CommitEvent{{AtMS: 10 * min, Host: 0}},
				Pollers:   []Poller{{Host: 1, Item: 0, Level: "SC", StartMS: 20_000, PeriodMS: 5_000}},
				Rules: []Rule{
					{Kind: "UPDATE", Version: -1, Item: 0, To: -1, Drop: true},
					{Kind: "SEND_NEW", Version: -1, Item: 0, To: -1, Drop: true},
				},
			},
			WantKinds: []string{DivStale},
		},
		{
			// The poller validates against the owner every SC query. The
			// off-by-one mutant vouches for copies one version behind,
			// so after v1 commits the poller keeps serving v0 on the
			// strength of POLL_ACK_A instead of receiving v1 content.
			Mutant: "acka-off-by-one",
			Scenario: Scenario{
				Name:     "gate-acka-off-by-one",
				Seed:     base,
				Nodes:    4,
				Strategy: "rpcc",
				Mutant:   "acka-off-by-one",

				HorizonMS: 14 * min,
				Warm:      []Placement{{Host: 2, Item: 0}},
				Commits:   []CommitEvent{{AtMS: 10 * min, Host: 0}},
				Pollers:   []Poller{{Host: 2, Item: 0, Level: "SC", StartMS: 15_000, PeriodMS: 15_000}},
				// Should the coefficient election promote the poller to
				// relay, the push path must not heal its copy and mask
				// the broken ACK.
				Rules: []Rule{
					{Kind: "UPDATE", Version: -1, Item: 0, To: 2, Drop: true},
					{Kind: "SEND_NEW", Version: -1, Item: 0, To: 2, Drop: true},
				},
			},
			WantKinds: []string{DivStale},
		},
		{
			// Single source, InvTTL 2 on a 7-node line: the spec radius
			// is {1,2}. The mutant floods one hop further, so node 3
			// hears INVALIDATION at hops 3 — overreach on every tick.
			Mutant: "flood-ttl-plus-one",
			Scenario: Scenario{
				Name:         "gate-flood-ttl-plus-one",
				Seed:         base,
				Nodes:        7,
				Strategy:     "rpcc",
				Mutant:       "flood-ttl-plus-one",
				InvTTL:       2,
				SingleSource: true,
				CheckReach:   true,
				HorizonMS:    5 * min,
			},
			WantKinds: []string{DivOverreach},
		},
		{
			// Same setup, one hop short: node 2 — inside the spec radius
			// — never hears any INVALIDATION, reported at Finish.
			Mutant: "flood-ttl-minus-one",
			Scenario: Scenario{
				Name:         "gate-flood-ttl-minus-one",
				Seed:         base,
				Nodes:        7,
				Strategy:     "rpcc",
				Mutant:       "flood-ttl-minus-one",
				InvTTL:       2,
				SingleSource: true,
				CheckReach:   true,
				HorizonMS:    5 * min,
			},
			WantKinds: []string{DivUnderreach},
		},
		{
			// Δ-consistency reuses a validated copy for at most TTP. The
			// poller validates v0 at its first query (~0:20) and v1
			// commits at 2:00; a correct node re-polls at 4:20, while
			// the doubled window keeps serving local v0 until 8:20 —
			// past the TTP+TTR envelope, which expires at 7:32.
			Mutant: "ttp-double",
			Scenario: Scenario{
				Name:     "gate-ttp-double",
				Seed:     base,
				Nodes:    4,
				Strategy: "rpcc",
				Mutant:   "ttp-double",

				HorizonMS: 12 * min,
				Warm:      []Placement{{Host: 2, Item: 0}},
				Commits:   []CommitEvent{{AtMS: 2 * min, Host: 0}},
				Pollers:   []Poller{{Host: 2, Item: 0, Level: "DC", StartMS: 20_000, PeriodMS: 20_000}},
				// As in the ACK gate: block the push path so a relay
				// promotion cannot refresh the copy out from under the
				// doubled window.
				Rules: []Rule{
					{Kind: "UPDATE", Version: -1, Item: 0, To: 2, Drop: true},
					{Kind: "SEND_NEW", Version: -1, Item: 0, To: 2, Drop: true},
				},
			},
			WantKinds: []string{DivStale},
		},
		{
			// The relay holds v2 when a duplicated UPDATE v1 replays 6.5
			// minutes late. The clean handler rejects the regression; the
			// mutant force-installs it (Remove+Put past the store's
			// monotone backstop), so the relay's local SC answers drop
			// from v2 back to v1 — a monotone-read divergence. TTR is
			// raised to TTN so the relay's local-answer authority spans
			// the whole INVALIDATION period and the replay cannot hide
			// in a TTR gap; the 6.5-minute delay lands the replay half a
			// period after a tick, giving the regressed copy a ~90s
			// serving window before authority lapses. SEND_NEW is
			// dropped so the relay cannot quietly re-repair.
			Mutant: "store-regression",
			Scenario: Scenario{
				Name:     "gate-store-regression",
				Seed:     base,
				Nodes:    4,
				Strategy: "rpcc",
				Mutant:   "store-regression",
				TTRMS:    2 * min,

				HorizonMS: 20 * min,
				Warm:      []Placement{{Host: 2, Item: 0}},
				Relays:    []Placement{{Host: 2, Item: 0}},
				Commits:   []CommitEvent{{AtMS: 10 * min, Host: 0}, {AtMS: 14 * min, Host: 0}},
				Pollers:   []Poller{{Host: 2, Item: 0, Level: "SC", StartMS: 20_000, PeriodMS: 5_000}},
				Rules: []Rule{
					{Kind: "UPDATE", Version: 1, Item: 0, To: -1, Occurrence: 1, DelayMS: 13 * min / 2, Dup: true},
					{Kind: "SEND_NEW", Version: -1, Item: 0, To: -1, Drop: true},
				},
			},
			WantKinds: []string{DivMonotone, DivStale},
		},
	}
}

// GateResult is the outcome of one gate case.
type GateResult struct {
	Mutant string
	// Detected is how many divergences the mutant run produced.
	Detected int
	// FirstKind is the kind of the first divergence ("" when none).
	FirstKind string
	// FalsePositives is how many divergences the clean control produced.
	FalsePositives int
	// Caught means the mutant run diverged with an expected kind AND the
	// clean control stayed silent.
	Caught bool
	Err    error
}

// RunGates executes the whole catalogue for one seed: each case once
// with the mutant injected and once as a clean control (same scenario,
// mutant stripped).
func RunGates(seed int64) []GateResult {
	gates := Gates(seed)
	results := make([]GateResult, 0, len(gates))
	for _, g := range gates {
		res := GateResult{Mutant: g.Mutant}
		mutRep, err := Run(g.Scenario)
		if err != nil {
			res.Err = fmt.Errorf("mutant run: %w", err)
			results = append(results, res)
			continue
		}
		clean := g.Scenario
		clean.Mutant = ""
		clean.Name += "-clean"
		cleanRep, err := Run(clean)
		if err != nil {
			res.Err = fmt.Errorf("clean control: %w", err)
			results = append(results, res)
			continue
		}
		res.Detected = len(mutRep.Divergences)
		res.FalsePositives = len(cleanRep.Divergences)
		wantKind := false
		if len(mutRep.Divergences) > 0 {
			res.FirstKind = mutRep.Divergences[0].Kind
			for _, d := range mutRep.Divergences {
				for _, w := range g.WantKinds {
					if d.Kind == w {
						wantKind = true
					}
				}
			}
		}
		res.Caught = wantKind && res.FalsePositives == 0
		results = append(results, res)
	}
	return results
}
