package oracle

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
)

// modelEnv wires a model over a 2-item registry with v1 of item 0
// committed at commitAt.
func modelEnv(t *testing.T, spec Spec, commitAt time.Duration) (*sim.Kernel, *data.Registry, *Model) {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(1))
	reg, err := data.NewRegistry(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Master(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(commitAt); err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	return k, reg, model
}

// observeAt runs the observation at sim time at so k.Now() is honest.
func observeAt(t *testing.T, k *sim.Kernel, at time.Duration, fn func(kk *sim.Kernel)) {
	t.Helper()
	if _, err := k.At(at, "test.observe", fn); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(at + time.Millisecond)
}

func strongSpec(env time.Duration) Spec {
	return Spec{
		Envelopes: map[consistency.Level]time.Duration{consistency.LevelStrong: env},
		Slack:     2 * time.Second,
	}
}

func TestModelFlagsTornCopy(t *testing.T) {
	k, _, model := modelEnv(t, strongSpec(time.Minute), 10*time.Minute)
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelStrong}
	observeAt(t, k, time.Minute, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, data.Copy{ID: 0, Version: 1, Value: "garbage"})
	})
	divs := model.Finish()
	if len(divs) != 1 || divs[0].Kind != DivTorn {
		t.Fatalf("divergences = %v, want one %s", divs, DivTorn)
	}
}

func TestModelFlagsUncommittedVersion(t *testing.T) {
	k, _, model := modelEnv(t, strongSpec(time.Minute), 10*time.Minute)
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelStrong}
	observeAt(t, k, time.Minute, func(kk *sim.Kernel) {
		// Version 7 was never committed; the value is well-formed so only
		// the commit check can reject it.
		model.ObserveAnswer(kk, q, data.Copy{ID: 0, Version: 7, Value: data.ValueFor(0, 7)})
	})
	divs := model.Finish()
	if len(divs) != 1 || divs[0].Kind != DivUncommitted {
		t.Fatalf("divergences = %v, want one %s", divs, DivUncommitted)
	}
}

func TestModelFlagsFutureVersion(t *testing.T) {
	// v1 commits at 10:00; serving it at 1:00 means the answer cites a
	// version that does not exist yet.
	k, reg, model := modelEnv(t, strongSpec(time.Minute), 10*time.Minute)
	m, _ := reg.Master(0)
	v1 := m.Current()
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelStrong}
	observeAt(t, k, time.Minute, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, v1)
	})
	divs := model.Finish()
	if len(divs) != 1 || divs[0].Kind != DivUncommitted {
		t.Fatalf("divergences = %v, want one %s", divs, DivUncommitted)
	}
}

func TestModelStalenessEnvelope(t *testing.T) {
	// Envelope 1min + slack 2s: serving v0 is fine until 11:02, stale
	// after.
	spec := strongSpec(time.Minute)
	k, reg, model := modelEnv(t, spec, 10*time.Minute)
	_ = reg
	v0 := data.Copy{ID: 0, Version: 0, Value: data.ValueFor(0, 0)}
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelStrong}
	observeAt(t, k, 11*time.Minute, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, v0) // inside envelope
	})
	if divs := model.divs; len(divs) != 0 {
		t.Fatalf("answer inside envelope flagged: %v", divs)
	}
	observeAt(t, k, 11*time.Minute+3*time.Second, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, v0) // outside envelope
	})
	divs := model.Finish()
	if len(divs) != 1 || divs[0].Kind != DivStale {
		t.Fatalf("divergences = %v, want one %s", divs, DivStale)
	}
	if divs[0].MinOK != 1 {
		t.Fatalf("min ok version = %d, want 1", divs[0].MinOK)
	}
}

func TestModelInflateWidensEnvelope(t *testing.T) {
	spec := strongSpec(time.Minute)
	spec.Inflate = 30 * time.Second
	k, _, model := modelEnv(t, spec, 10*time.Minute)
	v0 := data.Copy{ID: 0, Version: 0, Value: data.ValueFor(0, 0)}
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelStrong}
	// 11:03 is stale without inflation (see above) but inside the
	// widened envelope.
	observeAt(t, k, 11*time.Minute+3*time.Second, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, v0)
	})
	if divs := model.Finish(); len(divs) != 0 {
		t.Fatalf("inflated envelope still flagged: %v", divs)
	}
}

func TestModelWeakLevelUnbounded(t *testing.T) {
	// Weak is absent from the envelope map: any committed version is
	// acceptable forever.
	k, _, model := modelEnv(t, strongSpec(time.Minute), 10*time.Minute)
	v0 := data.Copy{ID: 0, Version: 0, Value: data.ValueFor(0, 0)}
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelWeak}
	observeAt(t, k, 30*time.Minute, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, v0)
	})
	if divs := model.Finish(); len(divs) != 0 {
		t.Fatalf("weak answer flagged: %v", divs)
	}
}

func TestModelMonotoneWatermark(t *testing.T) {
	k, reg, model := modelEnv(t, Spec{Slack: 2 * time.Second}, time.Minute)
	m, _ := reg.Master(0)
	v1 := m.Current()
	v0 := data.Copy{ID: 0, Version: 0, Value: data.ValueFor(0, 0)}
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelWeak}
	observeAt(t, k, 2*time.Minute, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, v1)
		model.ObserveAnswer(kk, q, v0) // regression
	})
	divs := model.Finish()
	if len(divs) != 1 || divs[0].Kind != DivMonotone {
		t.Fatalf("divergences = %v, want one %s", divs, DivMonotone)
	}
	// Another host's watermark is independent.
	q3 := &node.Query{Host: 3, Item: 0, Level: consistency.LevelWeak}
	observeAt(t, k, 3*time.Minute, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q3, v0)
	})
	if got := model.Finish(); len(got) != 1 {
		t.Fatalf("other host's v0 answer flagged: %v", got[1:])
	}
}

func TestModelCrashResetsWatermark(t *testing.T) {
	k, reg, model := modelEnv(t, Spec{Slack: 2 * time.Second}, time.Minute)
	m, _ := reg.Master(0)
	v1 := m.Current()
	v0 := data.Copy{ID: 0, Version: 0, Value: data.ValueFor(0, 0)}
	q := &node.Query{Host: 1, Item: 0, Level: consistency.LevelWeak}
	observeAt(t, k, 2*time.Minute, func(kk *sim.Kernel) {
		model.ObserveAnswer(kk, q, v1)
		model.OnCrash(1)
		model.ObserveAnswer(kk, q, v0) // legitimate after a crash
	})
	if divs := model.Finish(); len(divs) != 0 {
		t.Fatalf("post-crash v0 answer flagged: %v", divs)
	}
}

func TestModelFloodReachChecks(t *testing.T) {
	spec := Spec{InvTTL: 2, CheckReach: true, ExpectReach: []int{1, 2}}
	k, _, model := modelEnv(t, spec, time.Minute)
	_ = k
	inv := protocol.Message{Kind: protocol.KindInvalidation, Item: 0, Origin: 0}
	model.ObserveDelivery(time.Minute, 1, inv, netsim.Meta{Hops: 1})
	model.ObserveDelivery(time.Minute, 3, inv, netsim.Meta{Hops: 3}) // overreach
	divs := model.Finish()
	if len(divs) != 2 {
		t.Fatalf("divergences = %v, want overreach + underreach", divs)
	}
	if divs[0].Kind != DivOverreach || divs[0].Node != 3 {
		t.Fatalf("first divergence = %v, want %s at node 3", divs[0], DivOverreach)
	}
	if divs[1].Kind != DivUnderreach || divs[1].Node != 2 {
		t.Fatalf("second divergence = %v, want %s at node 2", divs[1], DivUnderreach)
	}
}

func TestPlanRuleMatching(t *testing.T) {
	rules := []Rule{
		{Kind: "UPDATE", Version: 1, Item: -1, To: -1, Occurrence: 2, Drop: true},
		{Kind: "POLL", Version: -1, Item: 0, To: 3, DelayMS: 500, Dup: true},
	}
	p, err := perturber(rules)
	if err != nil {
		t.Fatal(err)
	}
	upd := protocol.Message{Kind: protocol.KindUpdate, Item: 0, Version: 1}
	// Occurrence 2: first base match passes through, second is dropped,
	// third passes again.
	if got := p(1, upd, netsim.Meta{}); got.Drop {
		t.Fatal("occurrence 1 perturbed, want pass-through")
	}
	if got := p(1, upd, netsim.Meta{}); !got.Drop {
		t.Fatal("occurrence 2 not dropped")
	}
	if got := p(1, upd, netsim.Meta{}); got.Drop {
		t.Fatal("occurrence 3 perturbed, want pass-through")
	}
	// Version mismatch never counts as a base match.
	updV2 := upd
	updV2.Version = 2
	if got := p(1, updV2, netsim.Meta{}); got.Drop || got.Dup {
		t.Fatal("non-matching version perturbed")
	}
	// The second rule matches destination 3 only.
	poll := protocol.Message{Kind: protocol.KindPoll, Item: 0}
	if got := p(2, poll, netsim.Meta{}); got.Dup {
		t.Fatal("poll to node 2 perturbed, want pass-through")
	}
	got := p(3, poll, netsim.Meta{})
	if !got.Dup || got.Delay != 500*time.Millisecond {
		t.Fatalf("poll to node 3 perturbation = %+v, want dup+500ms", got)
	}
}

func TestPlanRejectsUnknownKind(t *testing.T) {
	if _, err := perturber([]Rule{{Kind: "NOT_A_KIND", Version: -1, Item: -1, To: -1}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	good := Scenario{Name: "ok", Nodes: 4, Strategy: "rpcc", HorizonMS: 60_000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"one node", func(s *Scenario) { s.Nodes = 1 }},
		{"zero horizon", func(s *Scenario) { s.HorizonMS = 0 }},
		{"unknown strategy", func(s *Scenario) { s.Strategy = "carrier-pigeon" }},
		{"mutant on baseline", func(s *Scenario) { s.Strategy = "pull"; s.Mutant = "ignore-ttr" }},
		{"unknown mutant", func(s *Scenario) { s.Mutant = "definitely-not" }},
		{"relays on baseline", func(s *Scenario) { s.Strategy = "push"; s.Relays = []Placement{{Host: 1}} }},
		{"bad rule kind", func(s *Scenario) { s.Rules = []Rule{{Kind: "NOPE", Version: -1, Item: -1, To: -1}} }},
		{"bad poller period", func(s *Scenario) { s.Pollers = []Poller{{Host: 1, Level: "SC"}} }},
		{"bad level", func(s *Scenario) { s.Queries = []QueryEvent{{Host: 1, Level: "XX"}} }},
		{"placement out of range", func(s *Scenario) { s.Warm = []Placement{{Host: 9, Item: 0}} }},
	}
	for _, tc := range cases {
		sc := good
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
