package oracle

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

// Trace line types. A trace is JSONL: one "scenario" line followed by
// zero or more "divergence" lines — the divergences the scenario
// produced when it was recorded. Replaying the scenario must reproduce
// them exactly (same count, kinds and order): the trace is both the bug
// report and its regression test.
const (
	traceScenario   = "scenario"
	traceDivergence = "divergence"
)

type traceLine struct {
	Type string `json:"type"`
	// Scenario payload (Type == "scenario").
	Scenario *Scenario `json:"scenario,omitempty"`
	// Divergence payload (Type == "divergence"), with the sim time
	// flattened to milliseconds for readability.
	AtMS   int64  `json:"at_ms,omitempty"`
	Node   int    `json:"node,omitempty"`
	Item   int    `json:"item,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Level  string `json:"level,omitempty"`
	Served int64  `json:"served,omitempty"`
	MinOK  int64  `json:"min_ok,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// WriteTrace serialises a scenario and its recorded divergences as JSONL.
func WriteTrace(w io.Writer, sc Scenario, divs []Divergence) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(traceLine{Type: traceScenario, Scenario: &sc}); err != nil {
		return err
	}
	for _, d := range divs {
		line := traceLine{
			Type:   traceDivergence,
			AtMS:   int64(d.At / time.Millisecond),
			Node:   d.Node,
			Item:   int(d.Item),
			Kind:   d.Kind,
			Level:  d.Level,
			Served: int64(d.Served),
			MinOK:  int64(d.MinOK),
			Detail: d.Detail,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// ReadTrace parses a JSONL trace back into its scenario and recorded
// divergence summary (at, node, kind — the fields replay verification
// compares).
func ReadTrace(r io.Reader) (Scenario, []Divergence, error) {
	sc := Scenario{}
	var divs []Divergence
	seenScenario := false
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		raw := scan.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line traceLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return sc, nil, fmt.Errorf("oracle: trace line %d: %w", lineNo, err)
		}
		switch line.Type {
		case traceScenario:
			if seenScenario {
				return sc, nil, fmt.Errorf("oracle: trace line %d: duplicate scenario", lineNo)
			}
			if line.Scenario == nil {
				return sc, nil, fmt.Errorf("oracle: trace line %d: scenario line without payload", lineNo)
			}
			sc = *line.Scenario
			seenScenario = true
		case traceDivergence:
			divs = append(divs, Divergence{
				At:     time.Duration(line.AtMS) * time.Millisecond,
				Node:   line.Node,
				Item:   data.ItemID(line.Item),
				Kind:   line.Kind,
				Level:  line.Level,
				Served: data.Version(line.Served),
				MinOK:  data.Version(line.MinOK),
				Detail: line.Detail,
			})
		default:
			return sc, nil, fmt.Errorf("oracle: trace line %d: unknown type %q", lineNo, line.Type)
		}
	}
	if err := scan.Err(); err != nil {
		return sc, nil, err
	}
	if !seenScenario {
		return sc, nil, fmt.Errorf("oracle: trace has no scenario line")
	}
	return sc, divs, nil
}

// Replay reruns a trace's scenario and verifies it reproduces the
// recorded divergences: same count, and matching (kind, node, at) per
// line. It returns the fresh report.
func Replay(sc Scenario, recorded []Divergence) (*Report, error) {
	rep, err := Run(sc)
	if err != nil {
		return nil, err
	}
	if len(rep.Divergences) != len(recorded) {
		return rep, fmt.Errorf("oracle: replay produced %d divergences, trace recorded %d",
			len(rep.Divergences), len(recorded))
	}
	for i, got := range rep.Divergences {
		want := recorded[i]
		if got.Kind != want.Kind || got.Node != want.Node || got.At/time.Millisecond != want.At/time.Millisecond {
			return rep, fmt.Errorf("oracle: replay divergence %d = (%s node=%d at=%v), trace recorded (%s node=%d at=%v)",
				i, got.Kind, got.Node, got.At, want.Kind, want.Node, want.At)
		}
	}
	return rep, nil
}
