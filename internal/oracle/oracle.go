// Package oracle is the differential conformance harness: it runs any
// strategy (RPCC or a pushpull baseline) against a zero-latency
// omniscient reference model that tracks, per (node, item, sim-time),
// the set of versions a correct implementation may answer under each
// consistency level. Divergences — answers outside that set — are
// recorded with enough context to replay them from a JSONL trace
// (trace.go). The harness is driven two ways: a deterministic seeded
// message-level fuzzer (fuzz.go) that mutates delivery schedules and
// shrinks failures, and a mutation gate (mutants.go) that injects known
// protocol mutants and fails unless the oracle catches every one.
package oracle

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
)

// Divergence kinds, ordered roughly by severity.
const (
	// DivTorn: the served copy failed its integrity check (wrong item or
	// value/version mismatch).
	DivTorn = "torn"
	// DivUncommitted: the served version was never committed at the
	// master, or was committed after the answer time.
	DivUncommitted = "uncommitted"
	// DivStale: the served version is older than the strategy's
	// staleness envelope for the query's consistency level allows.
	DivStale = "stale"
	// DivMonotone: a (host, item) pair observed a version older than one
	// it already observed, without an intervening crash.
	DivMonotone = "monotone"
	// DivOverreach: an invalidation flood was delivered beyond its
	// specified TTL radius.
	DivOverreach = "flood-overreach"
	// DivUnderreach: a node inside the specified TTL radius never heard
	// any invalidation (reported at Finish, only when CheckReach is set).
	DivUnderreach = "flood-underreach"
)

// Divergence is one observed violation of the reference model.
type Divergence struct {
	At     time.Duration `json:"at"`
	Node   int           `json:"node"`
	Item   data.ItemID   `json:"item"`
	Kind   string        `json:"kind"`
	Level  string        `json:"level,omitempty"`
	Served data.Version  `json:"served,omitempty"`
	MinOK  data.Version  `json:"min_ok,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s node=%d item=%d at=%v served=v%d min=v%d %s",
		d.Kind, d.Node, d.Item, d.At, d.Served, d.MinOK, d.Detail)
}

// Spec is the per-run contract the model checks against. Envelopes maps
// a consistency level to the strategy's staleness bound for answers at
// that level; a level absent from the map is bound only by the universal
// committed-value rule (weak consistency, or strategies like GPSCE whose
// invalidation is best-effort by design). Slack absorbs message flight
// and timer-stagger jitter; Inflate widens every envelope further and is
// set to the fuzzer's maximum injected delay so that delayed *fresh*
// evidence can never produce a false positive (a copy validated at
// generation time t_g and delivered at t_g+MaxDelay is still inside
// envelope+Inflate).
type Spec struct {
	Envelopes map[consistency.Level]time.Duration
	Slack     time.Duration
	Inflate   time.Duration
	// InvTTL is the invalidation flood radius the strategy is configured
	// with; deliveries of KindInvalidation with more hops are overreach.
	// Zero disables the overreach check.
	InvTTL int
	// CheckReach, when set, requires every node listed in ExpectReach to
	// hear at least one invalidation by Finish. Only sound for scenarios
	// without drop rules or crashes.
	CheckReach  bool
	ExpectReach []int
}

type wmKey struct {
	host int
	item data.ItemID
}

// Model is the omniscient reference. It sees every answered query (via
// the chassis answer observer) and every message delivery (via the
// netsim tracer) with zero latency, and checks each against Spec.
type Model struct {
	reg      *data.Registry
	spec     Spec
	wm       map[wmKey]data.Version
	invHeard map[int]bool
	divs     []Divergence
	answers  uint64
}

// NewModel builds a reference model over the registry's masters.
func NewModel(reg *data.Registry, spec Spec) (*Model, error) {
	if reg == nil {
		return nil, fmt.Errorf("oracle: nil registry")
	}
	if spec.Slack < 0 || spec.Inflate < 0 {
		return nil, fmt.Errorf("oracle: negative slack %v or inflate %v", spec.Slack, spec.Inflate)
	}
	return &Model{
		reg:      reg,
		spec:     spec,
		wm:       make(map[wmKey]data.Version),
		invHeard: make(map[int]bool),
	}, nil
}

// Answers returns how many answered queries the model has observed.
func (m *Model) Answers() uint64 { return m.answers }

func (m *Model) diverge(d Divergence) { m.divs = append(m.divs, d) }

// debugAnswerHook, when set by a test, sees every observed answer.
var debugAnswerHook func(at time.Duration, q *node.Query, served data.Copy)

// ObserveAnswer checks one answered query. Wire it with
// Chassis.SetAnswerObserver.
func (m *Model) ObserveAnswer(k *sim.Kernel, q *node.Query, served data.Copy) {
	m.answers++
	if debugAnswerHook != nil {
		debugAnswerHook(k.Now(), q, served)
	}
	now := k.Now()
	base := Divergence{At: now, Node: q.Host, Item: q.Item, Level: q.Level.String(), Served: served.Version}

	// Universal rule 1: the copy must be internally consistent and for
	// the queried item.
	if served.ID != q.Item || !served.Consistent() {
		d := base
		d.Kind = DivTorn
		d.Detail = fmt.Sprintf("served item %d value %q", served.ID, served.Value)
		m.diverge(d)
		return
	}

	master, err := m.reg.Master(q.Item)
	if err != nil {
		d := base
		d.Kind = DivUncommitted
		d.Detail = "unknown item"
		m.diverge(d)
		return
	}

	// Universal rule 2: only committed values, committed no later than
	// the answer time, may be served.
	ct, committed := master.CommitTime(served.Version)
	if !committed || ct > now {
		d := base
		d.Kind = DivUncommitted
		d.Detail = fmt.Sprintf("committed=%v commitTime=%v", committed, ct)
		m.diverge(d)
		return
	}

	// Per-level staleness envelope.
	if env, bounded := m.spec.Envelopes[q.Level]; bounded {
		horizon := now - env - m.spec.Slack - m.spec.Inflate
		if horizon > 0 {
			minOK := master.VersionAt(horizon)
			if served.Version < minOK {
				d := base
				d.Kind = DivStale
				d.MinOK = minOK
				d.Detail = fmt.Sprintf("envelope=%v slack=%v inflate=%v", env, m.spec.Slack, m.spec.Inflate)
				m.diverge(d)
			}
		}
	}

	// Per-(host, item) monotone reads: once a node has seen version v it
	// must never be answered an older one (crash resets the watermark).
	key := wmKey{host: q.Host, item: q.Item}
	if prev, seen := m.wm[key]; seen && served.Version < prev {
		d := base
		d.Kind = DivMonotone
		d.MinOK = prev
		d.Detail = "answer regressed below watermark"
		m.diverge(d)
		return
	}
	if served.Version > m.wm[key] {
		m.wm[key] = served.Version
	}
}

// ObserveDelivery checks one message delivery. Wire it with
// Network.SetTracer.
func (m *Model) ObserveDelivery(at time.Duration, nd int, msg protocol.Message, meta netsim.Meta) {
	if msg.Kind != protocol.KindInvalidation {
		return
	}
	m.invHeard[nd] = true
	if m.spec.InvTTL > 0 && meta.Hops > m.spec.InvTTL {
		m.diverge(Divergence{
			At:     at,
			Node:   nd,
			Item:   msg.Item,
			Kind:   DivOverreach,
			Served: msg.Version,
			Detail: fmt.Sprintf("hops=%d ttl=%d", meta.Hops, m.spec.InvTTL),
		})
	}
}

// OnCrash resets node nd's monotone watermarks: a crashed node loses its
// cache and may legitimately re-observe older committed versions.
func (m *Model) OnCrash(nd int) {
	for key := range m.wm {
		if key.host == nd {
			delete(m.wm, key)
		}
	}
}

// Finish runs end-of-horizon checks (flood underreach) and returns every
// divergence observed, in observation order.
func (m *Model) Finish() []Divergence {
	if m.spec.CheckReach {
		for _, nd := range m.spec.ExpectReach {
			if !m.invHeard[nd] {
				m.diverge(Divergence{
					Node:   nd,
					Kind:   DivUnderreach,
					Detail: fmt.Sprintf("node inside ttl=%d radius heard no invalidation", m.spec.InvTTL),
				})
			}
		}
	}
	return m.divs
}
