package oracle

import (
	"fmt"
	"math/rand"
)

// FuzzConfig drives a deterministic fuzzing campaign: Rounds random
// scenarios derived from Seed. The same (Seed, Rounds, Strategy) always
// explores the same scenarios and reports the same findings.
type FuzzConfig struct {
	Seed   int64
	Rounds int
	// Strategy fixes the strategy under test; "" rotates through all of
	// them round-robin.
	Strategy string
}

// FuzzFinding is one divergence-producing scenario, shrunk to a minimal
// reproducer.
type FuzzFinding struct {
	Round int
	// Original is the scenario as generated.
	Original Scenario
	// Shrunk is the minimised scenario; Divergences are its divergences.
	Shrunk      Scenario
	Divergences []Divergence
}

var fuzzStrategies = []string{"rpcc", "pull", "push", "adaptive", "gpsce"}

// rpccKinds are the message kinds the fuzzer perturbs on RPCC runs;
// baselineKinds likewise for the pushpull engines.
var rpccKinds = []string{
	"INVALIDATION", "UPDATE", "GET_NEW", "SEND_NEW",
	"POLL", "POLL_ACK_A", "POLL_ACK_B", "DATA_REQUEST", "DATA_REPLY",
}
var baselineKinds = []string{
	"IR", "PULL_POLL", "PULL_REPLY", "PULL_ACK", "DATA_REQUEST", "DATA_REPLY",
}

// randomScenario draws one scenario. All randomness comes from rng, so a
// round is fully determined by its derived seed.
func randomScenario(rng *rand.Rand, strategy string, round int) Scenario {
	const minMS = int64(60_000)
	nodes := 4 + rng.Intn(5) // 4..8
	horizon := (10 + int64(rng.Intn(8))) * minMS
	sc := Scenario{
		Name:      fmt.Sprintf("fuzz-%s-r%d", strategy, round),
		Seed:      rng.Int63(),
		Nodes:     nodes,
		Strategy:  strategy,
		HorizonMS: horizon,
	}

	// Workload: item 0 (owner node 0), a handful of warm copies, a few
	// commits in the first two-thirds of the horizon, periodic pollers.
	for host := 1; host < nodes; host++ {
		if rng.Intn(2) == 0 {
			sc.Warm = append(sc.Warm, Placement{Host: host, Item: 0})
		}
	}
	if strategy == "rpcc" && len(sc.Warm) > 0 && rng.Intn(2) == 0 {
		sc.Relays = append(sc.Relays, Placement{Host: sc.Warm[0].Host, Item: 0})
	}
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		at := minMS + rng.Int63n(horizon*2/3)
		sc.Commits = append(sc.Commits, CommitEvent{AtMS: at, Host: 0})
	}
	levels := []string{"SC", "DC", "WC"}
	for i, n := 0, 2+rng.Intn(2); i < n; i++ {
		sc.Pollers = append(sc.Pollers, Poller{
			Host:     1 + rng.Intn(nodes-1),
			Item:     0,
			Level:    levels[rng.Intn(len(levels))],
			StartMS:  10_000 + rng.Int63n(20_000),
			PeriodMS: 5_000 + rng.Int63n(15_000),
		})
	}
	if strategy == "rpcc" && rng.Intn(3) == 0 {
		sc.Crashes = append(sc.Crashes, CrashEvent{
			AtMS: minMS + rng.Int63n(horizon/2),
			Host: 1 + rng.Intn(nodes-1),
		})
	}

	// Schedule perturbations: delayed, duplicated and dropped control
	// messages.
	kinds := rpccKinds
	if strategy != "rpcc" {
		kinds = baselineKinds
	}
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		r := Rule{
			Kind:       kinds[rng.Intn(len(kinds))],
			Version:    -1,
			Item:       -1,
			To:         -1,
			Occurrence: rng.Intn(4), // 0 = every
		}
		if rng.Intn(2) == 0 {
			r.Version = rng.Int63n(4)
		}
		if rng.Intn(3) == 0 {
			r.To = rng.Intn(nodes)
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // drop
			r.Drop = true
		case 4, 5, 6: // delay
			r.DelayMS = 1_000 + rng.Int63n(59_000)
		default: // duplicate, delayed copy
			r.Dup = true
			r.DelayMS = 1_000 + rng.Int63n(59_000)
		}
		sc.Rules = append(sc.Rules, r)
	}

	// Soundness: widen every staleness envelope by the largest injected
	// delay, so delayed *fresh* evidence can never read as a divergence.
	sc.InflateMS = int64(maxRuleDelay(sc.Rules).Milliseconds())
	return sc
}

// reproduces reruns a candidate scenario and reports whether it still
// diverges. Scenario errors count as non-reproduction.
func reproduces(sc Scenario) bool {
	rep, err := Run(sc)
	return err == nil && len(rep.Divergences) > 0
}

// shrink greedily minimises a diverging scenario: drop rules, crashes,
// commits, pollers, warm placements and trailing horizon while the
// divergence persists. Bounded by a fixed pass budget so fuzzing cannot
// stall on a pathological case.
func shrink(sc Scenario) Scenario {
	cur := sc
	for pass := 0; pass < 8; pass++ {
		changed := false

		tryRules := func() {
			for i := 0; i < len(cur.Rules); i++ {
				cand := cur
				cand.Rules = append(append([]Rule(nil), cur.Rules[:i]...), cur.Rules[i+1:]...)
				cand.InflateMS = int64(maxRuleDelay(cand.Rules).Milliseconds())
				if reproduces(cand) {
					cur = cand
					changed = true
					i--
				}
			}
		}
		tryCrashes := func() {
			for i := 0; i < len(cur.Crashes); i++ {
				cand := cur
				cand.Crashes = append(append([]CrashEvent(nil), cur.Crashes[:i]...), cur.Crashes[i+1:]...)
				if reproduces(cand) {
					cur = cand
					changed = true
					i--
				}
			}
		}
		tryCommits := func() {
			for i := 0; i < len(cur.Commits); i++ {
				cand := cur
				cand.Commits = append(append([]CommitEvent(nil), cur.Commits[:i]...), cur.Commits[i+1:]...)
				if reproduces(cand) {
					cur = cand
					changed = true
					i--
				}
			}
		}
		tryPollers := func() {
			if len(cur.Pollers) <= 1 {
				return
			}
			for i := 0; i < len(cur.Pollers); i++ {
				cand := cur
				cand.Pollers = append(append([]Poller(nil), cur.Pollers[:i]...), cur.Pollers[i+1:]...)
				if reproduces(cand) {
					cur = cand
					changed = true
					i--
				}
			}
		}
		tryWarm := func() {
			for i := 0; i < len(cur.Warm); i++ {
				cand := cur
				cand.Warm = append(append([]Placement(nil), cur.Warm[:i]...), cur.Warm[i+1:]...)
				// Relays require their warm placement; drop dependents.
				var relays []Placement
				for _, r := range cand.Relays {
					kept := false
					for _, w := range cand.Warm {
						if w == r {
							kept = true
						}
					}
					if kept {
						relays = append(relays, r)
					}
				}
				cand.Relays = relays
				if reproduces(cand) {
					cur = cand
					changed = true
					i--
				}
			}
		}
		tryHorizon := func() {
			cand := cur
			cand.HorizonMS = cur.HorizonMS * 3 / 4
			if cand.HorizonMS > 0 && reproduces(cand) {
				cur = cand
				changed = true
			}
		}

		tryRules()
		tryCrashes()
		tryCommits()
		tryPollers()
		tryWarm()
		tryHorizon()
		if !changed {
			break
		}
	}
	return cur
}

// Fuzz runs the campaign and returns every finding, shrunk. An error is
// only returned for campaign-level misconfiguration; scenarios that fail
// to build (e.g. a generated rule outside a strategy's vocabulary) are
// skipped deterministically.
func Fuzz(cfg FuzzConfig) ([]FuzzFinding, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("oracle: fuzz rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.Strategy != "" {
		found := false
		for _, s := range fuzzStrategies {
			if s == cfg.Strategy {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("oracle: unknown fuzz strategy %q", cfg.Strategy)
		}
	}
	var findings []FuzzFinding
	for round := 0; round < cfg.Rounds; round++ {
		strategy := cfg.Strategy
		if strategy == "" {
			strategy = fuzzStrategies[round%len(fuzzStrategies)]
		}
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(round)))
		sc := randomScenario(rng, strategy, round)
		rep, err := Run(sc)
		if err != nil {
			// Deterministically skip unbuildable scenarios.
			continue
		}
		if len(rep.Divergences) == 0 {
			continue
		}
		shrunk := shrink(sc)
		srep, err := Run(shrunk)
		if err != nil || len(srep.Divergences) == 0 {
			// Shrinking must preserve reproduction; fall back to the
			// original if it somehow did not.
			shrunk, srep = sc, rep
		}
		findings = append(findings, FuzzFinding{
			Round:       round,
			Original:    sc,
			Shrunk:      shrunk,
			Divergences: srep.Divergences,
		})
	}
	return findings, nil
}
