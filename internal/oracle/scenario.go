package oracle

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/pushpull"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// Placement warms one (host, item) pair before the run starts.
type Placement struct {
	Host int `json:"host"`
	Item int `json:"item"`
}

// CommitEvent commits a new version at Host's master at AtMS.
type CommitEvent struct {
	AtMS int64 `json:"at_ms"`
	Host int   `json:"host"`
}

// CrashEvent crashes Host at AtMS (RPCC only: cache and protocol state
// are lost; the oracle resets the host's monotone watermarks).
type CrashEvent struct {
	AtMS int64 `json:"at_ms"`
	Host int   `json:"host"`
}

// QueryEvent issues one query.
type QueryEvent struct {
	AtMS  int64  `json:"at_ms"`
	Host  int    `json:"host"`
	Item  int    `json:"item"`
	Level string `json:"level"` // "SC" | "DC" | "WC"
}

// Poller issues periodic queries: at StartMS, StartMS+PeriodMS, ... up
// to (but excluding) StopMS (0 = the horizon). A compact alternative to
// enumerating hundreds of QueryEvents.
type Poller struct {
	Host     int    `json:"host"`
	Item     int    `json:"item"`
	Level    string `json:"level"`
	StartMS  int64  `json:"start_ms"`
	PeriodMS int64  `json:"period_ms"`
	StopMS   int64  `json:"stop_ms,omitempty"`
}

// Scenario is a fully declarative conformance run: topology, strategy,
// workload, schedule perturbations, oracle tolerances and an optional
// protocol mutant. Being plain data, a scenario serialises into a trace
// and replays byte-for-byte (same seed, same kernel event order).
type Scenario struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
	Strategy string `json:"strategy"` // rpcc | pull | push | adaptive | gpsce
	// HorizonMS is the simulated run length.
	HorizonMS int64 `json:"horizon_ms"`
	// InvTTL overrides the invalidation flood TTL (0 = strategy default).
	InvTTL int `json:"inv_ttl,omitempty"`
	// TTRMS overrides RPCC's TTR (0 = default). Must stay <= TTN.
	TTRMS int64 `json:"ttr_ms,omitempty"`
	// SingleSource silences every source host except 0 (Fig 9 setup).
	SingleSource bool `json:"single_source,omitempty"`
	// Mutant names a core.Mutant to inject ("" = clean run; RPCC only).
	Mutant string `json:"mutant,omitempty"`
	// SlackMS overrides the oracle slack (0 = 2s default).
	SlackMS int64 `json:"slack_ms,omitempty"`
	// InflateMS widens every staleness envelope; the fuzzer sets it to
	// its maximum injected delay so delayed fresh evidence cannot
	// produce a false positive. Scripted gates leave it 0.
	InflateMS int64 `json:"inflate_ms,omitempty"`
	// CheckReach enables the flood-underreach check (sound only without
	// drop rules or crashes).
	CheckReach bool `json:"check_reach,omitempty"`
	// CacheCap overrides the per-node cache capacity (0 = the default
	// 10). Small caps force evictions, exercising the replacement policy
	// and the eviction → relay-CANCEL teardown under the oracle's eye.
	CacheCap int `json:"cache_cap,omitempty"`
	// Policy selects the cache replacement policy ("" = lru; "lfu",
	// "ttl", "utility"). Consistency guarantees must hold under any.
	Policy string `json:"policy,omitempty"`

	Warm    []Placement   `json:"warm,omitempty"`
	Relays  []Placement   `json:"relays,omitempty"`
	Commits []CommitEvent `json:"commits,omitempty"`
	Crashes []CrashEvent  `json:"crashes,omitempty"`
	Queries []QueryEvent  `json:"queries,omitempty"`
	Pollers []Poller      `json:"pollers,omitempty"`
	Rules   []Rule        `json:"rules,omitempty"`
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario    Scenario
	Divergences []Divergence
	Issued      uint64
	Answered    uint64
	Failed      uint64
}

// strategyRunner is the slice of experiment.Strategy the oracle drives.
type strategyRunner interface {
	Start(k *sim.Kernel) error
	OnQuery(k *sim.Kernel, host int, item data.ItemID, level consistency.Level)
	OnUpdate(k *sim.Kernel, host int)
}

func parseLevel(s string) (consistency.Level, error) {
	switch s {
	case "SC":
		return consistency.LevelStrong, nil
	case "DC":
		return consistency.LevelDelta, nil
	case "WC":
		return consistency.LevelWeak, nil
	}
	return 0, fmt.Errorf("oracle: unknown consistency level %q", s)
}

// mutantByName maps core.Mutant String() names back to values.
var mutantByName = map[string]core.Mutant{
	core.MutantStaleUpdate.String():      core.MutantStaleUpdate,
	core.MutantIgnoreTTR.String():        core.MutantIgnoreTTR,
	core.MutantAckAOffByOne.String():     core.MutantAckAOffByOne,
	core.MutantFloodTTLPlusOne.String():  core.MutantFloodTTLPlusOne,
	core.MutantFloodTTLMinusOne.String(): core.MutantFloodTTLMinusOne,
	core.MutantTTPDouble.String():        core.MutantTTPDouble,
	core.MutantStoreRegression.String():  core.MutantStoreRegression,
}

func parseMutant(s string) (core.Mutant, error) {
	if s == "" {
		return core.MutantNone, nil
	}
	if m, ok := mutantByName[s]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("oracle: unknown mutant %q", s)
}

// Validate rejects malformed scenarios before any state is built.
func (sc Scenario) Validate() error {
	if sc.Nodes < 2 {
		return fmt.Errorf("oracle: scenario needs at least 2 nodes, got %d", sc.Nodes)
	}
	if sc.HorizonMS <= 0 {
		return fmt.Errorf("oracle: non-positive horizon %dms", sc.HorizonMS)
	}
	switch sc.Strategy {
	case "rpcc", "pull", "push", "adaptive", "gpsce":
	default:
		return fmt.Errorf("oracle: unknown strategy %q", sc.Strategy)
	}
	if sc.Mutant != "" && sc.Strategy != "rpcc" {
		return fmt.Errorf("oracle: mutants apply only to rpcc, not %q", sc.Strategy)
	}
	if len(sc.Relays) > 0 && sc.Strategy != "rpcc" {
		return fmt.Errorf("oracle: relay seeding applies only to rpcc")
	}
	if _, err := parseMutant(sc.Mutant); err != nil {
		return err
	}
	if sc.CacheCap < 0 {
		return fmt.Errorf("oracle: negative cache capacity %d", sc.CacheCap)
	}
	if !cache.PolicyKind(sc.Policy).Valid() {
		return fmt.Errorf("oracle: unknown cache policy %q", sc.Policy)
	}
	if _, err := compileRules(sc.Rules); err != nil {
		return err
	}
	for _, p := range sc.Pollers {
		if p.PeriodMS <= 0 {
			return fmt.Errorf("oracle: poller period %dms must be positive", p.PeriodMS)
		}
		if _, err := parseLevel(p.Level); err != nil {
			return err
		}
	}
	for _, q := range sc.Queries {
		if _, err := parseLevel(q.Level); err != nil {
			return err
		}
	}
	for _, lst := range [][]Placement{sc.Warm, sc.Relays} {
		for _, p := range lst {
			if p.Host < 0 || p.Host >= sc.Nodes || p.Item < 0 || p.Item >= sc.Nodes {
				return fmt.Errorf("oracle: placement (host %d, item %d) outside %d nodes", p.Host, p.Item, sc.Nodes)
			}
		}
	}
	return nil
}

// envelopes returns the per-level staleness bounds the strategy
// guarantees; see DESIGN.md §11 for the derivations. Levels absent from
// the map are checked only against the universal committed-value rule.
func envelopes(sc Scenario) map[consistency.Level]time.Duration {
	env := make(map[consistency.Level]time.Duration)
	switch sc.Strategy {
	case "rpcc":
		cc := core.DefaultConfig()
		ttr := cc.TTR
		if sc.TTRMS > 0 {
			ttr = time.Duration(sc.TTRMS) * time.Millisecond
		}
		// SC answers come from an authority validated within TTR; DC
		// additionally tolerates one TTP window of local reuse.
		env[consistency.LevelStrong] = ttr
		env[consistency.LevelDelta] = cc.TTP + ttr
	case "pull":
		// Every answer is validated against the source per query; only
		// flight time (covered by slack) separates it from the master.
		env[consistency.LevelStrong] = 0
		env[consistency.LevelDelta] = 0
	case "push":
		// Answers validate against the latest IR, at most one broadcast
		// interval old.
		ttn := pushpull.DefaultPushConfig().TTN
		env[consistency.LevelStrong] = ttn
		env[consistency.LevelDelta] = ttn
	case "adaptive":
		// The pull window backs off to at most MaxWindow between
		// validations.
		maxw := pushpull.DefaultAdaptiveConfig().MaxWindow
		env[consistency.LevelStrong] = maxw
		env[consistency.LevelDelta] = maxw
	case "gpsce":
		// Geo-routed invalidation is best-effort (unregistered holders
		// are never invalidated), so only the committed-value rule and
		// monotone reads apply.
	}
	return env
}

// buildStrategy constructs the requested strategy over the chassis.
func buildStrategy(sc Scenario, ch *node.Chassis) (strategyRunner, error) {
	single := func(host int) bool { return host == 0 }
	switch sc.Strategy {
	case "rpcc":
		cc := core.DefaultConfig()
		m, err := parseMutant(sc.Mutant)
		if err != nil {
			return nil, err
		}
		cc.Mutant = m
		if sc.InvTTL > 0 {
			cc.InvalidationTTL = sc.InvTTL
		}
		if sc.TTRMS > 0 {
			cc.TTR = time.Duration(sc.TTRMS) * time.Millisecond
		}
		if sc.SingleSource {
			cc.ActiveSource = single
		}
		eng, err := core.New(cc, ch, core.Telemetry{})
		if err != nil {
			return nil, err
		}
		return eng, nil
	case "pull":
		p, err := pushpull.NewPull(pushpull.DefaultPullConfig(), ch)
		if err != nil {
			return nil, err
		}
		return p, nil
	case "push":
		pc := pushpull.DefaultPushConfig()
		if sc.SingleSource {
			pc.ActiveSource = single
		}
		p, err := pushpull.NewPush(pc, ch)
		if err != nil {
			return nil, err
		}
		return p, nil
	case "adaptive":
		a, err := pushpull.NewAdaptive(pushpull.DefaultAdaptiveConfig(), ch)
		if err != nil {
			return nil, err
		}
		return a, nil
	case "gpsce":
		g, err := pushpull.NewGPSCE(pushpull.DefaultGPSCEConfig(), ch)
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	return nil, fmt.Errorf("oracle: unknown strategy %q", sc.Strategy)
}

// lineSource pins nodes on a 200m chain: with the default 250m radio
// range only adjacent nodes hear each other, so hop counts equal node
// distance and TTL scenarios are exact.
type lineSource struct{ pts []geo.Point }

func (s *lineSource) Len() int { return len(s.pts) }
func (s *lineSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

// Run executes the scenario to its horizon and returns the oracle's
// report. Same scenario, same report — byte for byte.
func Run(sc Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel(sim.WithSeed(sc.Seed))
	pts := make([]geo.Point, sc.Nodes)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	net, err := netsim.New(netsim.DefaultConfig(), k, &lineSource{pts: pts}, nil, nil, stats.NewTraffic())
	if err != nil {
		return nil, err
	}
	reg, err := data.NewRegistry(sc.Nodes)
	if err != nil {
		return nil, err
	}
	cap := sc.CacheCap
	if cap == 0 {
		cap = 10
	}
	ccfg := core.DefaultConfig()
	stores := make([]*cache.Store, sc.Nodes)
	for i := range stores {
		pol, perr := cache.NewPolicy(cache.PolicyKind(sc.Policy), cache.PolicyParams{TTL: ccfg.TTP})
		if perr != nil {
			return nil, perr
		}
		if stores[i], err = cache.NewStoreWithPolicy(cap, pol); err != nil {
			return nil, err
		}
	}
	aud, err := consistency.NewAuditor(reg, ccfg.TTP, 2*time.Second)
	if err != nil {
		return nil, err
	}
	ch, err := node.NewChassis(node.DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		return nil, err
	}
	strat, err := buildStrategy(sc, ch)
	if err != nil {
		return nil, err
	}

	slack := 2 * time.Second
	if sc.SlackMS > 0 {
		slack = time.Duration(sc.SlackMS) * time.Millisecond
	}
	specTTL := sc.InvTTL
	if specTTL == 0 && sc.Strategy == "rpcc" {
		specTTL = ccfg.InvalidationTTL
	}
	spec := Spec{
		Envelopes:  envelopes(sc),
		Slack:      slack,
		Inflate:    time.Duration(sc.InflateMS) * time.Millisecond,
		InvTTL:     specTTL,
		CheckReach: sc.CheckReach,
	}
	if sc.CheckReach {
		if !sc.SingleSource {
			return nil, fmt.Errorf("oracle: CheckReach requires SingleSource")
		}
		for nd := 1; nd < sc.Nodes && nd <= specTTL; nd++ {
			spec.ExpectReach = append(spec.ExpectReach, nd)
		}
	}
	model, err := NewModel(reg, spec)
	if err != nil {
		return nil, err
	}
	ch.SetAnswerObserver(model.ObserveAnswer)
	net.SetTracer(model.ObserveDelivery)
	pert, err := perturber(sc.Rules)
	if err != nil {
		return nil, err
	}
	if pert != nil {
		net.SetPerturber(pert)
	}

	// Pre-start placement: warm copies, then seed relays (which require
	// the copy to be present).
	type warmer interface {
		Warm(k *sim.Kernel, host int, c data.Copy)
	}
	for _, p := range sc.Warm {
		m, err := reg.Master(data.ItemID(p.Item))
		if err != nil {
			return nil, err
		}
		if w, ok := strat.(warmer); ok {
			w.Warm(k, p.Host, m.Current())
		} else if err := stores[p.Host].Put(m.Current(), k.Now()); err != nil {
			return nil, err
		}
	}
	eng, isRPCC := strat.(*core.Engine)
	for _, p := range sc.Relays {
		if !isRPCC {
			return nil, fmt.Errorf("oracle: relay seeding requires rpcc")
		}
		if err := eng.SeedRelay(k, p.Host, data.ItemID(p.Item)); err != nil {
			return nil, err
		}
	}

	if err := strat.Start(k); err != nil {
		return nil, err
	}

	// Schedule the workload. Every event goes through k.At so ordering
	// is the kernel's deterministic tie-break, not slice order.
	horizon := time.Duration(sc.HorizonMS) * time.Millisecond
	for _, c := range sc.Commits {
		host := c.Host
		if _, err := k.At(time.Duration(c.AtMS)*time.Millisecond, "oracle.commit", func(kk *sim.Kernel) {
			strat.OnUpdate(kk, host)
		}); err != nil {
			return nil, err
		}
	}
	for _, cr := range sc.Crashes {
		if !isRPCC {
			return nil, fmt.Errorf("oracle: crash events require rpcc")
		}
		host := cr.Host
		if _, err := k.At(time.Duration(cr.AtMS)*time.Millisecond, "oracle.crash", func(kk *sim.Kernel) {
			if err := eng.Crash(kk, host); err == nil {
				model.OnCrash(host)
			}
		}); err != nil {
			return nil, err
		}
	}
	queries := append([]QueryEvent(nil), sc.Queries...)
	for _, p := range sc.Pollers {
		stop := p.StopMS
		if stop <= 0 {
			stop = sc.HorizonMS
		}
		for at := p.StartMS; at < stop; at += p.PeriodMS {
			queries = append(queries, QueryEvent{AtMS: at, Host: p.Host, Item: p.Item, Level: p.Level})
		}
	}
	sort.SliceStable(queries, func(i, j int) bool { return queries[i].AtMS < queries[j].AtMS })
	for _, q := range queries {
		q := q
		lvl, err := parseLevel(q.Level)
		if err != nil {
			return nil, err
		}
		if _, err := k.At(time.Duration(q.AtMS)*time.Millisecond, "oracle.query", func(kk *sim.Kernel) {
			strat.OnQuery(kk, q.Host, data.ItemID(q.Item), lvl)
		}); err != nil {
			return nil, err
		}
	}

	k.RunUntil(horizon)
	return &Report{
		Scenario:    sc,
		Divergences: model.Finish(),
		Issued:      ch.Issued(),
		Answered:    ch.Answered(),
		Failed:      ch.Failed(),
	}, nil
}
