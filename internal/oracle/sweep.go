package oracle

import "fmt"

// CleanSweep returns one unmutated, unperturbed scenario per strategy:
// an 8-node line with two active sources and a mixed-level query
// workload. The conformance gate requires every one of these to finish
// with zero divergences — the oracle's false-positive check.
func CleanSweep(seed int64) []Scenario {
	const min = int64(60_000)
	var out []Scenario
	for _, strategy := range fuzzStrategies {
		sc := Scenario{
			Name:      fmt.Sprintf("sweep-%s", strategy),
			Seed:      seed,
			Nodes:     8,
			Strategy:  strategy,
			HorizonMS: 20 * min,
			Warm: []Placement{
				{Host: 2, Item: 0}, {Host: 3, Item: 0}, {Host: 5, Item: 1},
			},
			Commits: []CommitEvent{
				{AtMS: 3 * min, Host: 0}, {AtMS: 7 * min, Host: 0},
				{AtMS: 11 * min, Host: 0}, {AtMS: 15 * min, Host: 0},
				{AtMS: 5 * min, Host: 1}, {AtMS: 13 * min, Host: 1},
			},
			Pollers: []Poller{
				{Host: 2, Item: 0, Level: "SC", StartMS: 15_000, PeriodMS: 9_000},
				{Host: 3, Item: 0, Level: "DC", StartMS: 20_000, PeriodMS: 13_000},
				{Host: 4, Item: 0, Level: "WC", StartMS: 25_000, PeriodMS: 11_000},
				{Host: 5, Item: 1, Level: "SC", StartMS: 30_000, PeriodMS: 17_000},
				{Host: 6, Item: 1, Level: "DC", StartMS: 35_000, PeriodMS: 19_000},
			},
		}
		if strategy == "rpcc" {
			sc.Relays = []Placement{{Host: 2, Item: 0}}
		}
		out = append(out, sc)
	}
	return out
}
