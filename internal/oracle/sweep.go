package oracle

import "fmt"

// CleanSweep returns one unmutated, unperturbed scenario per strategy:
// an 8-node line with two active sources and a mixed-level query
// workload. The conformance gate requires every one of these to finish
// with zero divergences — the oracle's false-positive check.
func CleanSweep(seed int64) []Scenario {
	const min = int64(60_000)
	var out []Scenario
	for _, strategy := range fuzzStrategies {
		sc := Scenario{
			Name:      fmt.Sprintf("sweep-%s", strategy),
			Seed:      seed,
			Nodes:     8,
			Strategy:  strategy,
			HorizonMS: 20 * min,
			Warm: []Placement{
				{Host: 2, Item: 0}, {Host: 3, Item: 0}, {Host: 5, Item: 1},
			},
			Commits: []CommitEvent{
				{AtMS: 3 * min, Host: 0}, {AtMS: 7 * min, Host: 0},
				{AtMS: 11 * min, Host: 0}, {AtMS: 15 * min, Host: 0},
				{AtMS: 5 * min, Host: 1}, {AtMS: 13 * min, Host: 1},
			},
			Pollers: []Poller{
				{Host: 2, Item: 0, Level: "SC", StartMS: 15_000, PeriodMS: 9_000},
				{Host: 3, Item: 0, Level: "DC", StartMS: 20_000, PeriodMS: 13_000},
				{Host: 4, Item: 0, Level: "WC", StartMS: 25_000, PeriodMS: 11_000},
				{Host: 5, Item: 1, Level: "SC", StartMS: 30_000, PeriodMS: 17_000},
				{Host: 6, Item: 1, Level: "DC", StartMS: 35_000, PeriodMS: 19_000},
			},
		}
		if strategy == "rpcc" {
			sc.Relays = []Placement{{Host: 2, Item: 0}}
		}
		out = append(out, sc)
	}
	return out
}

// EvictionChurnScenario squeezes an RPCC line into two-item caches so
// replacement pressure constantly evicts copies — including a seeded
// relay's — while pollers keep demanding all three active items. It
// pins the eviction → relay-CANCEL teardown for the given replacement
// policy ("" = lru): a relay that keeps answering after silently losing
// its copy, or a source that keeps pushing to a cancelled relay, shows
// up as a divergence or an unanswered poll.
func EvictionChurnScenario(seed int64, policy string) Scenario {
	const min = int64(60_000)
	return Scenario{
		Name:      fmt.Sprintf("eviction-churn-%s", policyLabel(policy)),
		Seed:      seed,
		Nodes:     8,
		Strategy:  "rpcc",
		HorizonMS: 20 * min,
		CacheCap:  2,
		Policy:    policy,
		// Three items contend for two slots at every caching host.
		Warm: []Placement{
			{Host: 2, Item: 0}, {Host: 2, Item: 1},
			{Host: 3, Item: 0}, {Host: 3, Item: 3},
			{Host: 5, Item: 1}, {Host: 5, Item: 3},
		},
		Relays: []Placement{{Host: 2, Item: 0}},
		Commits: []CommitEvent{
			{AtMS: 3 * min, Host: 0}, {AtMS: 9 * min, Host: 0}, {AtMS: 15 * min, Host: 0},
			{AtMS: 5 * min, Host: 1}, {AtMS: 13 * min, Host: 1},
			{AtMS: 7 * min, Host: 3}, {AtMS: 17 * min, Host: 3},
		},
		Pollers: []Poller{
			{Host: 2, Item: 0, Level: "SC", StartMS: 15_000, PeriodMS: 9_000},
			{Host: 2, Item: 3, Level: "DC", StartMS: 21_000, PeriodMS: 12_000},
			{Host: 3, Item: 1, Level: "DC", StartMS: 24_000, PeriodMS: 13_000},
			{Host: 4, Item: 0, Level: "WC", StartMS: 27_000, PeriodMS: 11_000},
			{Host: 5, Item: 0, Level: "SC", StartMS: 30_000, PeriodMS: 17_000},
			{Host: 5, Item: 3, Level: "WC", StartMS: 33_000, PeriodMS: 14_000},
			{Host: 6, Item: 1, Level: "DC", StartMS: 36_000, PeriodMS: 19_000},
		},
	}
}

// FlashCrowdScenario models a mid-run popularity spike: background
// demand on items 1 and 3, then every consumer host converges on item 0
// with tight poll periods for a five-minute window while its source
// keeps committing. Consistency levels must hold through the surge and
// the crowd's copies must keep being admitted/evicted coherently under
// the given replacement policy.
func FlashCrowdScenario(seed int64, policy string) Scenario {
	const min = int64(60_000)
	sc := Scenario{
		Name:      fmt.Sprintf("flash-crowd-%s", policyLabel(policy)),
		Seed:      seed,
		Nodes:     8,
		Strategy:  "rpcc",
		HorizonMS: 20 * min,
		CacheCap:  3,
		Policy:    policy,
		Warm: []Placement{
			{Host: 2, Item: 0}, {Host: 4, Item: 1}, {Host: 6, Item: 3},
		},
		Relays: []Placement{{Host: 2, Item: 0}},
		Commits: []CommitEvent{
			// The hot source commits through the surge.
			{AtMS: 6 * min, Host: 0}, {AtMS: 8 * min, Host: 0},
			{AtMS: 10 * min, Host: 0}, {AtMS: 12 * min, Host: 0},
			{AtMS: 4 * min, Host: 1}, {AtMS: 16 * min, Host: 3},
		},
		Pollers: []Poller{
			// Background demand across the run.
			{Host: 4, Item: 1, Level: "DC", StartMS: 20_000, PeriodMS: 25_000},
			{Host: 6, Item: 3, Level: "WC", StartMS: 30_000, PeriodMS: 31_000},
			// The flash crowd: five hosts hammer item 0 from minute 5
			// to minute 13.
			{Host: 2, Item: 0, Level: "SC", StartMS: 5 * min, PeriodMS: 7_000, StopMS: 13 * min},
			{Host: 3, Item: 0, Level: "SC", StartMS: 5*min + 2_000, PeriodMS: 8_000, StopMS: 13 * min},
			{Host: 4, Item: 0, Level: "DC", StartMS: 5*min + 4_000, PeriodMS: 6_000, StopMS: 13 * min},
			{Host: 5, Item: 0, Level: "DC", StartMS: 5*min + 6_000, PeriodMS: 9_000, StopMS: 13 * min},
			{Host: 6, Item: 0, Level: "WC", StartMS: 5*min + 8_000, PeriodMS: 5_000, StopMS: 13 * min},
			// Stragglers after the crowd disperses.
			{Host: 7, Item: 0, Level: "SC", StartMS: 14 * min, PeriodMS: 45_000},
		},
	}
	return sc
}

func policyLabel(policy string) string {
	if policy == "" {
		return "lru"
	}
	return policy
}

// PolicySweep returns the replacement-policy conformance matrix: the
// eviction-churn and flash-crowd scenarios under every built-in policy.
// Like CleanSweep, every scenario must finish with zero divergences.
func PolicySweep(seed int64) []Scenario {
	var out []Scenario
	for _, policy := range []string{"lru", "lfu", "ttl", "utility"} {
		out = append(out,
			EvictionChurnScenario(seed, policy),
			FlashCrowdScenario(seed, policy),
		)
	}
	return out
}
