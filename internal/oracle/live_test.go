package oracle

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
)

func liveCopy(item data.ItemID, v data.Version) data.Copy {
	return data.Copy{ID: item, Version: v, Value: data.ValueFor(item, v)}
}

func liveSpec() LiveSpec {
	return LiveSpec{
		Envelopes: map[consistency.Level]time.Duration{
			consistency.LevelStrong: time.Second,
			consistency.LevelDelta:  3 * time.Second,
		},
		Slack:   100 * time.Millisecond,
		Inflate: 200 * time.Millisecond,
	}
}

func kinds(divs []Divergence) []string {
	out := make([]string, len(divs))
	for i, d := range divs {
		out[i] = d.Kind
	}
	return out
}

func TestJudgeLiveCleanRun(t *testing.T) {
	commits := []LiveCommit{
		{Item: 1, Version: 1, At: 2 * time.Second},
		{Item: 1, Version: 2, At: 5 * time.Second},
	}
	answers := []LiveAnswer{
		// v0 before any commit.
		{Node: 0, Item: 1, Level: consistency.LevelStrong, Served: liveCopy(1, 0), At: time.Second},
		// Fresh answers after each commit.
		{Node: 0, Item: 1, Level: consistency.LevelStrong, Served: liveCopy(1, 1), At: 3 * time.Second},
		{Node: 2, Item: 1, Level: consistency.LevelDelta, Served: liveCopy(1, 2), At: 6 * time.Second},
		// Slightly stale WC answer: unaudited for staleness.
		{Node: 3, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 1), At: 20 * time.Second},
	}
	divs, err := JudgeLive(commits, answers, liveSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Fatalf("clean run judged divergent: %+v", divs)
	}
}

func TestJudgeLiveTorn(t *testing.T) {
	answers := []LiveAnswer{
		// Value does not match the claimed (item, version).
		{Node: 0, Item: 1, Level: consistency.LevelWeak,
			Served: data.Copy{ID: 1, Version: 2, Value: "corrupt"}, At: time.Second},
		// Copy of a different item entirely (distinct node, so the first
		// answer's watermark cannot add a monotone divergence here).
		{Node: 1, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(2, 0), At: 2 * time.Second},
	}
	divs, err := JudgeLive(nil, answers, liveSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 2 || divs[0].Kind != DivTorn || divs[1].Kind != DivTorn {
		t.Fatalf("want two torn divergences, got %v", kinds(divs))
	}
}

func TestJudgeLiveUncommitted(t *testing.T) {
	commits := []LiveCommit{{Item: 1, Version: 1, At: 5 * time.Second}}
	answers := []LiveAnswer{
		// Version that never existed.
		{Node: 0, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 7), At: 6 * time.Second},
		// Version served well before its commit instant (beyond slack).
		{Node: 1, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 1), At: time.Second},
	}
	divs, err := JudgeLive(commits, answers, liveSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 2 || divs[0].Kind != DivUncommitted || divs[1].Kind != DivUncommitted {
		t.Fatalf("want two uncommitted divergences, got %v", kinds(divs))
	}
	// Inside slack the same early answer is forgiven.
	spec := liveSpec()
	spec.Slack = 10 * time.Second
	if divs, err = JudgeLive(commits, answers[1:], spec); err != nil || len(divs) != 0 {
		t.Fatalf("slack did not forgive an in-flight answer: %v %v", divs, err)
	}
}

func TestJudgeLiveStaleEnvelope(t *testing.T) {
	commits := []LiveCommit{
		{Item: 1, Version: 1, At: 1 * time.Second},
		{Item: 1, Version: 2, At: 2 * time.Second},
	}
	// v1 served long after v2 committed: outside SC's 1s envelope
	// (+0.1s slack +0.2s inflate → horizon 8.7s, minOK v2).
	stale := LiveAnswer{Node: 0, Item: 1, Level: consistency.LevelStrong,
		Served: liveCopy(1, 1), At: 10 * time.Second}
	divs, err := JudgeLive(commits, []LiveAnswer{stale}, liveSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 1 || divs[0].Kind != DivStale || divs[0].MinOK != 2 {
		t.Fatalf("want one stale divergence with minOK=2, got %+v", divs)
	}

	// A wide enough inflate absorbs the same answer: real-network delay
	// must widen, never narrow, the envelope.
	spec := liveSpec()
	spec.Inflate = 10 * time.Second
	if divs, err = JudgeLive(commits, []LiveAnswer{stale}, spec); err != nil || len(divs) != 0 {
		t.Fatalf("inflate did not widen the envelope: %v %v", divs, err)
	}

	// The same answer at WC is unaudited.
	weak := stale
	weak.Level = consistency.LevelWeak
	if divs, err = JudgeLive(commits, []LiveAnswer{weak}, liveSpec()); err != nil || len(divs) != 0 {
		t.Fatalf("WC answer audited for staleness: %v %v", divs, err)
	}
}

func TestJudgeLiveMonotone(t *testing.T) {
	commits := []LiveCommit{
		{Item: 1, Version: 1, At: time.Second},
		{Item: 1, Version: 2, At: 2 * time.Second},
	}
	answers := []LiveAnswer{
		{Node: 0, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 2), At: 3 * time.Second},
		// Same node regresses to v1: monotone violation even at WC.
		{Node: 0, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 1), At: 4 * time.Second},
		// A different node at v1 is fine — watermarks are per (node, item).
		{Node: 1, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 1), At: 4 * time.Second},
	}
	divs, err := JudgeLive(commits, answers, liveSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 1 || divs[0].Kind != DivMonotone || divs[0].Node != 0 || divs[0].MinOK != 2 {
		t.Fatalf("want one monotone divergence at node 0, got %+v", divs)
	}
}

func TestJudgeLiveCommitRegressionErrors(t *testing.T) {
	commits := []LiveCommit{
		{Item: 1, Version: 1, At: 5 * time.Second},
		{Item: 1, Version: 2, At: 2 * time.Second}, // newer version, earlier time
	}
	if _, err := JudgeLive(commits, nil, liveSpec()); err == nil {
		t.Fatal("regressing commit times accepted")
	}
}

func TestLiveSpecValidate(t *testing.T) {
	bad := []LiveSpec{
		{Slack: -time.Second},
		{Inflate: -time.Second},
		{Envelopes: map[consistency.Level]time.Duration{consistency.LevelStrong: -1}},
		{Envelopes: map[consistency.Level]time.Duration{consistency.Level(99): time.Second}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if err := liveSpec().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestLiveRecorderLedgers(t *testing.T) {
	epoch := time.Unix(1000, 0)
	rec := NewLiveRecorder(epoch)
	rec.Commit(1, 1, epoch.Add(time.Second))
	rec.Answer(0, 1, consistency.LevelStrong, liveCopy(1, 1), epoch.Add(2*time.Second))
	commits, answers := rec.Ledgers()
	if len(commits) != 1 || commits[0].At != time.Second {
		t.Fatalf("commits = %+v", commits)
	}
	if len(answers) != 1 || answers[0].At != 2*time.Second || answers[0].Node != 0 {
		t.Fatalf("answers = %+v", answers)
	}
	// Returned slices are copies: mutating them must not corrupt the ledger.
	commits[0].Version = 99
	c2, _ := rec.Ledgers()
	if c2[0].Version != 1 {
		t.Fatal("ledger aliased by its copy")
	}
}

func TestJudgeLiveAdversityWindowExtendsHorizon(t *testing.T) {
	commits := []LiveCommit{
		{Item: 1, Version: 1, At: 1 * time.Second},
		{Item: 1, Version: 2, At: 2 * time.Second},
	}
	// Without windows this v1 answer at 10s is stale (horizon 8.7s > v2's
	// commit). A 7s cluster-wide partition covering most of the lookback
	// extends the horizon past v2's commit and forgives it.
	stale := LiveAnswer{Node: 0, Item: 1, Level: consistency.LevelStrong,
		Served: liveCopy(1, 1), At: 10 * time.Second}
	spec := liveSpec()
	spec.Windows = []LiveWindow{{Start: 3 * time.Second, End: 10 * time.Second, Node: -1}}
	divs, err := JudgeLive(commits, []LiveAnswer{stale}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Fatalf("scheduled partition did not forgive in-window staleness: %v", kinds(divs))
	}
	// A window scoped to a different node forgives nothing.
	spec.Windows[0].Node = 3
	if divs, err = JudgeLive(commits, []LiveAnswer{stale}, spec); err != nil || len(divs) != 1 || divs[0].Kind != DivStale {
		t.Fatalf("foreign-node window changed the verdict: %v %v", kinds(divs), err)
	}
	// Chained windows: extending past the first exposes the second
	// (fixpoint iteration), so together they still forgive.
	spec.Windows = []LiveWindow{
		{Start: 6 * time.Second, End: 10 * time.Second, Node: 0},
		{Start: 1500 * time.Millisecond, End: 5 * time.Second, Node: 0},
	}
	if divs, err = JudgeLive(commits, []LiveAnswer{stale}, spec); err != nil || len(divs) != 0 {
		t.Fatalf("chained windows not composed: %v %v", kinds(divs), err)
	}
}

func TestJudgeLiveRestartEpochForgivesWarmup(t *testing.T) {
	commits := []LiveCommit{
		{Item: 1, Version: 1, At: 1 * time.Second},
		{Item: 1, Version: 2, At: 2 * time.Second},
	}
	// Node 0 restarted at 9s; its v1 answer at 10s has horizon 8.7s,
	// before the new knowledge epoch, so staleness is the schedule's
	// fault. This is the broken-variant seam: drop the restart record and
	// the same ledger must be caught.
	stale := LiveAnswer{Node: 0, Item: 1, Level: consistency.LevelStrong,
		Served: liveCopy(1, 1), At: 10 * time.Second}
	spec := liveSpec()
	spec.Restarts = []LiveRestart{{Node: 0, At: 9 * time.Second}}
	divs, err := JudgeLive(commits, []LiveAnswer{stale}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Fatalf("post-restart warm-up not forgiven: %v", kinds(divs))
	}
	// Broken variant (no restart records): the judge has teeth.
	if divs, err = JudgeLive(commits, []LiveAnswer{stale}, liveSpec()); err != nil || len(divs) != 1 || divs[0].Kind != DivStale {
		t.Fatalf("restart-blind judge missed the staleness: %v %v", kinds(divs), err)
	}
	// A restart of a different node forgives nothing.
	spec.Restarts = []LiveRestart{{Node: 5, At: 9 * time.Second}}
	if divs, err = JudgeLive(commits, []LiveAnswer{stale}, spec); err != nil || len(divs) != 1 {
		t.Fatalf("foreign restart changed the verdict: %v %v", kinds(divs), err)
	}
	// Long after the restart the envelope re-arms.
	late := stale
	late.At = 15 * time.Second
	spec.Restarts = []LiveRestart{{Node: 0, At: 9 * time.Second}}
	if divs, err = JudgeLive(commits, []LiveAnswer{late}, spec); err != nil || len(divs) != 1 || divs[0].Kind != DivStale {
		t.Fatalf("restart forgiveness never re-armed: %v %v", kinds(divs), err)
	}
}

func TestJudgeLiveRestartResetsWatermark(t *testing.T) {
	commits := []LiveCommit{
		{Item: 1, Version: 1, At: time.Second},
		{Item: 1, Version: 2, At: 2 * time.Second},
	}
	answers := []LiveAnswer{
		{Node: 0, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 2), At: 3 * time.Second},
		// v0 after serving v2: a monotone regression — unless the node
		// restarted in between, which ends the read session.
		{Node: 0, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 0), At: 6 * time.Second},
	}
	divs, err := JudgeLive(commits, answers, liveSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 1 || divs[0].Kind != DivMonotone {
		t.Fatalf("want one monotone divergence, got %v", kinds(divs))
	}
	spec := liveSpec()
	spec.Restarts = []LiveRestart{{Node: 0, At: 5 * time.Second}}
	if divs, err = JudgeLive(commits, answers, spec); err != nil || len(divs) != 0 {
		t.Fatalf("restart did not reset the watermark: %v %v", kinds(divs), err)
	}
	// The reset is per-incarnation: a second regression after the restart
	// is still caught.
	regress := append(answers, LiveAnswer{
		Node: 0, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 2), At: 7 * time.Second,
	}, LiveAnswer{
		Node: 0, Item: 1, Level: consistency.LevelWeak, Served: liveCopy(1, 1), At: 8 * time.Second,
	})
	if divs, err = JudgeLive(commits, regress, spec); err != nil || len(divs) != 1 || divs[0].Kind != DivMonotone {
		t.Fatalf("post-restart regression missed: %v %v", kinds(divs), err)
	}
}

func TestLiveSpecValidateAdversity(t *testing.T) {
	spec := liveSpec()
	spec.Windows = []LiveWindow{{Start: 2 * time.Second, End: time.Second, Node: -1}}
	if err := spec.Validate(); err == nil {
		t.Fatal("inverted window accepted")
	}
	spec = liveSpec()
	spec.Windows = []LiveWindow{{Start: 0, End: time.Second, Node: -2}}
	if err := spec.Validate(); err == nil {
		t.Fatal("window node -2 accepted")
	}
	spec = liveSpec()
	spec.Restarts = []LiveRestart{{Node: -1, At: time.Second}}
	if err := spec.Validate(); err == nil {
		t.Fatal("negative restart node accepted")
	}
}
