package oracle

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
)

// Rule matches a class of message deliveries and perturbs their
// schedule. Matching fields with -1 (or "" for Kind) match anything; a
// delivery is perturbed by the first rule whose match and occurrence
// both pass. Occurrence counts *base* matches (kind/version/item/to):
// Occurrence 0 perturbs every base match, Occurrence n perturbs only the
// nth. Rules are pure data so plans serialise into traces.
type Rule struct {
	// Kind is the protocol kind name as printed by Kind.String()
	// (e.g. "UPDATE", "INVALIDATION").
	Kind string `json:"kind"`
	// Version matches msg.Version; -1 matches any.
	Version int64 `json:"version"`
	// Item matches msg.Item; -1 matches any.
	Item int `json:"item"`
	// To matches the delivery destination node; -1 matches any.
	To int `json:"to"`
	// Occurrence selects the nth base match (1-based); 0 means every.
	Occurrence int `json:"occurrence"`
	// DelayMS postpones delivery (the duplicate, when Dup is set).
	DelayMS int64 `json:"delay_ms,omitempty"`
	// Dup delivers twice: once on schedule, once after DelayMS.
	Dup bool `json:"dup,omitempty"`
	// Drop suppresses the delivery.
	Drop bool `json:"drop,omitempty"`
}

func (r Rule) String() string {
	return fmt.Sprintf("{%s v=%d item=%d to=%d occ=%d delay=%dms dup=%v drop=%v}",
		r.Kind, r.Version, r.Item, r.To, r.Occurrence, r.DelayMS, r.Dup, r.Drop)
}

// kindByName maps Kind.String() names back to kinds, built once.
var kindByName = func() map[string]protocol.Kind {
	m := make(map[string]protocol.Kind, protocol.NumKinds)
	for k := protocol.Kind(1); k.Valid(); k++ {
		m[k.String()] = k
	}
	return m
}()

// compileRules validates rule kinds up front so a bad plan fails fast
// rather than silently matching nothing.
func compileRules(rules []Rule) ([]protocol.Kind, error) {
	kinds := make([]protocol.Kind, len(rules))
	for i, r := range rules {
		k, ok := kindByName[r.Kind]
		if !ok {
			return nil, fmt.Errorf("oracle: rule %d: unknown message kind %q", i, r.Kind)
		}
		if r.DelayMS < 0 {
			return nil, fmt.Errorf("oracle: rule %d: negative delay %dms", i, r.DelayMS)
		}
		if r.Occurrence < 0 {
			return nil, fmt.Errorf("oracle: rule %d: negative occurrence %d", i, r.Occurrence)
		}
		kinds[i] = k
	}
	return kinds, nil
}

// perturber compiles rules into a netsim.Perturber with fresh occurrence
// counters. Deterministic: matching depends only on the delivery stream,
// which the kernel orders identically for identical seeds.
func perturber(rules []Rule) (netsim.Perturber, error) {
	if len(rules) == 0 {
		return nil, nil
	}
	kinds, err := compileRules(rules)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(rules))
	return func(nd int, msg protocol.Message, meta netsim.Meta) netsim.Perturbation {
		for i, r := range rules {
			if msg.Kind != kinds[i] {
				continue
			}
			if r.Version >= 0 && msg.Version != data.Version(r.Version) {
				continue
			}
			if r.Item >= 0 && msg.Item != data.ItemID(r.Item) {
				continue
			}
			if r.To >= 0 && nd != r.To {
				continue
			}
			counts[i]++
			if r.Occurrence != 0 && counts[i] != r.Occurrence {
				continue
			}
			return netsim.Perturbation{
				Delay: time.Duration(r.DelayMS) * time.Millisecond,
				Dup:   r.Dup,
				Drop:  r.Drop,
			}
		}
		return netsim.Perturbation{}
	}, nil
}

// maxRuleDelay returns the largest delay any rule can inject, used to
// inflate staleness envelopes so delayed fresh evidence cannot trip the
// oracle.
func maxRuleDelay(rules []Rule) time.Duration {
	var max time.Duration
	for _, r := range rules {
		if r.Drop {
			continue
		}
		if d := time.Duration(r.DelayMS) * time.Millisecond; d > max {
			max = d
		}
	}
	return max
}
