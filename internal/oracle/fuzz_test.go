package oracle

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestFuzzCleanTree fuzzes the unmutated protocol: with the envelope
// inflation in place, no schedule perturbation may produce a divergence
// on a correct implementation.
func TestFuzzCleanTree(t *testing.T) {
	findings, err := Fuzz(FuzzConfig{Seed: 7, Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("round %d (%s): %d divergences, first %s",
			f.Round, f.Shrunk.Strategy, len(f.Divergences), f.Divergences[0])
	}
}

// TestFuzzScenarioGeneratorIsDeterministic pins the same-seed discipline
// of the generator itself.
func TestFuzzScenarioGeneratorIsDeterministic(t *testing.T) {
	a := randomScenario(rand.New(rand.NewSource(42)), "rpcc", 3)
	b := randomScenario(rand.New(rand.NewSource(42)), "rpcc", 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scenarios differ:\n%+v\nvs\n%+v", a, b)
	}
	c := randomScenario(rand.New(rand.NewSource(43)), "rpcc", 3)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scenarios")
	}
}

// TestFuzzScenariosExerciseTheNetwork guards against the generator
// drifting into vacuity: across a campaign's rounds the scenarios must
// actually answer queries.
func TestFuzzScenariosExerciseTheNetwork(t *testing.T) {
	var answered uint64
	for round := 0; round < 10; round++ {
		strategy := fuzzStrategies[round%len(fuzzStrategies)]
		rng := rand.New(rand.NewSource(7*1_000_003 + int64(round)))
		sc := randomScenario(rng, strategy, round)
		rep, err := Run(sc)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		answered += rep.Answered
	}
	if answered < 100 {
		t.Fatalf("10 fuzz rounds answered only %d queries — workload too thin", answered)
	}
}

// TestShrinkPreservesReproduction shrinks a known-diverging scenario and
// checks the minimised form still diverges and is no larger than the
// original.
func TestShrinkPreservesReproduction(t *testing.T) {
	sc := Gates(1)[5].Scenario // ttp-double: cheapest diverging gate
	shrunk := shrink(sc)
	rep, err := Run(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) == 0 {
		t.Fatal("shrunk scenario no longer diverges")
	}
	if shrunk.HorizonMS > sc.HorizonMS || len(shrunk.Rules) > len(sc.Rules) {
		t.Fatalf("shrunk scenario grew: horizon %d>%d or rules %d>%d",
			shrunk.HorizonMS, sc.HorizonMS, len(shrunk.Rules), len(sc.Rules))
	}
}
