package oracle

import "testing"

// TestPolicySweepZeroDivergences: the consistency guarantees are
// replacement-policy independent — the eviction-churn and flash-crowd
// scenarios must finish clean (and non-vacuously) under every policy.
func TestPolicySweepZeroDivergences(t *testing.T) {
	for _, sc := range PolicySweep(1) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Divergences) > 0 {
				t.Fatalf("%d divergences, first: %s", len(rep.Divergences), rep.Divergences[0])
			}
			if rep.Answered == 0 {
				t.Fatal("vacuous run: zero answered queries")
			}
		})
	}
}

// TestPolicySweepDeterminism: a policy scenario replays byte-for-byte.
func TestPolicySweepDeterminism(t *testing.T) {
	sc := EvictionChurnScenario(7, "lfu")
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Issued != b.Issued || a.Answered != b.Answered || a.Failed != b.Failed {
		t.Fatalf("same-seed policy runs diverged: %+v vs %+v", a, b)
	}
}

// TestScenarioPolicyValidation: bad policy/capacity configs fail fast.
func TestScenarioPolicyValidation(t *testing.T) {
	sc := EvictionChurnScenario(1, "lru")
	sc.Policy = "random"
	if sc.Validate() == nil {
		t.Error("unknown policy accepted")
	}
	sc = EvictionChurnScenario(1, "lru")
	sc.CacheCap = -2
	if sc.Validate() == nil {
		t.Error("negative cache capacity accepted")
	}
}
