package oracle

import (
	"reflect"
	"testing"
)

// TestMutantGateCatalogue is the in-tree mutation gate: every mutant in
// the catalogue must be detected (with an expected divergence kind) and
// its clean control must stay silent.
func TestMutantGateCatalogue(t *testing.T) {
	for _, r := range RunGates(1) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Mutant, r.Err)
			continue
		}
		if !r.Caught {
			t.Errorf("%s: escaped (detected=%d first=%q falsePositives=%d)",
				r.Mutant, r.Detected, r.FirstKind, r.FalsePositives)
		}
		if r.FalsePositives > 0 {
			t.Errorf("%s: clean control produced %d divergences", r.Mutant, r.FalsePositives)
		}
	}
}

// TestMutantGateSecondSeed guards against the catalogue depending on one
// lucky kernel schedule.
func TestMutantGateSecondSeed(t *testing.T) {
	for _, r := range RunGates(4) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Mutant, r.Err)
			continue
		}
		if !r.Caught {
			t.Errorf("%s: escaped at seed 4 (detected=%d)", r.Mutant, r.Detected)
		}
	}
}

// TestCleanSweepNoFalsePositives runs every strategy unmutated and
// unperturbed: the oracle must observe hundreds of answers and flag
// none.
func TestCleanSweepNoFalsePositives(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, sc := range CleanSweep(seed) {
			rep, err := Run(sc)
			if err != nil {
				t.Errorf("seed %d %s: %v", seed, sc.Name, err)
				continue
			}
			if len(rep.Divergences) > 0 {
				t.Errorf("seed %d %s: %d false positives, first %s",
					seed, sc.Name, len(rep.Divergences), rep.Divergences[0])
			}
			if rep.Answered == 0 {
				t.Errorf("seed %d %s: sweep answered nothing — vacuous", seed, sc.Name)
			}
		}
	}
}

// TestRunDeterminism pins the byte-identical same-seed discipline at the
// oracle level: the same scenario must yield the same report, divergence
// for divergence.
func TestRunDeterminism(t *testing.T) {
	sc := Gates(1)[0].Scenario
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Answered != b.Answered || a.Failed != b.Failed || a.Issued != b.Issued {
		t.Fatalf("counters differ: (%d,%d,%d) vs (%d,%d,%d)",
			a.Answered, a.Failed, a.Issued, b.Answered, b.Failed, b.Issued)
	}
	if !reflect.DeepEqual(a.Divergences, b.Divergences) {
		t.Fatalf("divergences differ:\n%v\nvs\n%v", a.Divergences, b.Divergences)
	}
}
