package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

func ev(at time.Duration, kind protocol.Kind) Event {
	return Event{At: at, Kind: kind, Node: 1, Origin: 0, Item: 2, Version: 3}
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewRecorder(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRecordAndEvents(t *testing.T) {
	r, err := NewRecorder(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.Record(ev(time.Duration(i)*time.Second, protocol.KindPoll))
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("Len=%d Total=%d, want 3,3", r.Len(), r.Total())
	}
	events := r.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events not chronological")
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r, _ := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(ev(time.Duration(i)*time.Second, protocol.KindPoll))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	events := r.Events()
	if events[0].At != 6*time.Second || events[3].At != 9*time.Second {
		t.Fatalf("retained window wrong: %v .. %v", events[0].At, events[3].At)
	}
}

func TestFilters(t *testing.T) {
	r, _ := NewRecorder(16)
	r.SetFilter(KindFilter(protocol.KindUpdate, protocol.KindInvalidation))
	r.Record(ev(1, protocol.KindPoll))         // filtered out
	r.Record(ev(2, protocol.KindUpdate))       // kept
	r.Record(ev(3, protocol.KindInvalidation)) // kept
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after kind filter", r.Len())
	}
	counts := r.CountByKind()
	if counts[protocol.KindUpdate] != 1 || counts[protocol.KindPoll] != 0 {
		t.Fatalf("CountByKind = %v", counts)
	}
}

func TestItemFilterAndWhere(t *testing.T) {
	r, _ := NewRecorder(16)
	a := ev(1, protocol.KindPoll)
	b := ev(2, protocol.KindPoll)
	b.Item = 9
	r.Record(a)
	r.Record(b)
	got := r.Where(ItemFilter(9))
	if len(got) != 1 || got[0].Item != 9 {
		t.Fatalf("Where(item 9) = %v", got)
	}
}

func TestEventStringAndFormat(t *testing.T) {
	e := Event{At: 1500 * time.Millisecond, Node: 4, Origin: 2, Kind: protocol.KindUpdate, Item: 3, Version: 7, Hops: 2}
	s := e.String()
	for _, want := range []string{"M4", "UPDATE", "D3", "v7", "M2", "2 hops", "unicast"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q missing %q", s, want)
		}
	}
	e.Flood = true
	if !strings.Contains(e.String(), "flood") {
		t.Error("flood event not labelled")
	}
	out := Format([]Event{e, e})
	if strings.Count(out, "\n") != 2 {
		t.Errorf("Format newlines = %d", strings.Count(out, "\n"))
	}
}

// staticSource for the end-to-end tracer test.
type staticSource struct{ pts []geo.Point }

func (s *staticSource) Len() int { return len(s.pts) }
func (s *staticSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

func TestTracerCapturesNetworkDeliveries(t *testing.T) {
	k := sim.NewKernel()
	pts := []geo.Point{{X: 0}, {X: 200}, {X: 400}}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecorder(64)
	if err != nil {
		t.Fatal(err)
	}
	net.SetTracer(r.Tracer())
	msg := protocol.Message{Kind: protocol.KindApply, Item: 1, Origin: 0, Version: 5}
	if err := net.Unicast(0, 2, msg); err != nil {
		t.Fatal(err)
	}
	if err := net.Flood(0, 2, protocol.Message{Kind: protocol.KindIR, Item: 1, Origin: 0}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	events := r.Events()
	if len(events) == 0 {
		t.Fatal("tracer captured nothing")
	}
	var sawUnicast, sawFlood bool
	for _, e := range events {
		if e.Kind == protocol.KindApply && !e.Flood && e.Node == 2 && e.Hops == 2 {
			sawUnicast = true
		}
		if e.Kind == protocol.KindIR && e.Flood {
			sawFlood = true
		}
	}
	if !sawUnicast {
		t.Error("unicast delivery not captured with hop count")
	}
	if !sawFlood {
		t.Error("flood delivery not captured")
	}
}

// TestSummaryAccounting checks the recorder's lifetime accounting at the
// capacity boundary: the ring may shrink what Events sees, but Summary
// is exact, and Total == Retained + Overwritten at every step.
func TestSummaryAccounting(t *testing.T) {
	r, _ := NewRecorder(4)
	check := func(total uint64, retained int, overwritten, filtered uint64) {
		t.Helper()
		s := r.Summary()
		if s.Total != total || s.Retained != retained || s.Overwritten != overwritten || s.Filtered != filtered {
			t.Fatalf("Summary = %+v, want total=%d retained=%d overwritten=%d filtered=%d",
				s, total, retained, overwritten, filtered)
		}
		if s.Total != uint64(s.Retained)+s.Overwritten {
			t.Fatalf("invariant broken: Total %d != Retained %d + Overwritten %d",
				s.Total, s.Retained, s.Overwritten)
		}
	}

	check(0, 0, 0, 0)
	for i := 0; i < 3; i++ {
		r.Record(ev(time.Duration(i), protocol.KindPoll))
	}
	check(3, 3, 0, 0) // below capacity: nothing lost
	r.Record(ev(3, protocol.KindUpdate))
	check(4, 4, 0, 0) // exactly at capacity: still nothing lost
	r.Record(ev(4, protocol.KindUpdate))
	check(5, 4, 1, 0) // one past capacity: first overwrite
	for i := 5; i < 12; i++ {
		r.Record(ev(time.Duration(i), protocol.KindInvalidation))
	}
	check(12, 4, 8, 0)

	// PerKind counts survive overwrite — they track recorded, not retained.
	s := r.Summary()
	if s.PerKind[protocol.KindPoll] != 3 || s.PerKind[protocol.KindUpdate] != 2 || s.PerKind[protocol.KindInvalidation] != 7 {
		t.Fatalf("PerKind = %v", s.PerKind)
	}

	// Filtered events are counted separately and never enter the ring.
	r.SetFilter(func(e Event) bool { return e.Kind != protocol.KindPoll })
	r.Record(ev(12, protocol.KindPoll))
	check(12, 4, 8, 1)
	r.Record(ev(13, protocol.KindUpdate))
	check(13, 4, 9, 1)
}
