// Package trace records protocol message deliveries for post-hoc
// inspection: a bounded ring buffer of typed events with filtering and
// formatting helpers. It plugs into the network layer's Tracer hook, so
// any simulation — a unit test chasing a protocol bug, or cmd/rpcctrace —
// can capture exactly what crossed the air and when.
//
// Flood deliveries carry the network layer's Meta.FloodID: every
// delivery of one broadcast shares the id, so grouping events by
// FloodID reconstructs each invalidation/update wave — who received it,
// in what order, and at what hop depth. internal/telemetry uses the
// same key for its per-wave spans; the Where helper filters a recorded
// trace down to one wave.
package trace

import (
	"fmt"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
)

// Event is one recorded message delivery.
type Event struct {
	At      time.Duration
	Node    int // receiving node
	Origin  int // message originator
	Kind    protocol.Kind
	Item    data.ItemID
	Version data.Version
	Hops    int
	Flood   bool
	// FloodID is the network layer's flood sequence number — nonzero only
	// for flood deliveries, and shared by every delivery of one flood, so
	// a trace can be grouped by broadcast wave.
	FloodID uint64
}

// String renders the event as one trace line.
func (e Event) String() string {
	via := "unicast"
	if e.Flood {
		via = "flood"
	}
	return fmt.Sprintf("%12v  M%-2d <- %-12v %v v%-3d from M%-2d (%d hops, %s)",
		e.At.Truncate(time.Millisecond), e.Node, e.Kind, e.Item, e.Version, e.Origin, e.Hops, via)
}

// Recorder keeps the most recent events in a fixed-capacity ring.
// Recorder is not safe for concurrent use; it lives inside the
// single-threaded simulation loop like everything else.
type Recorder struct {
	ring  []Event
	next  int
	full  bool
	total uint64
	keep  func(Event) bool

	// perKind counts every recorded event by kind — recorded, not
	// retained: ring overwrite does not decrement it.
	perKind [protocol.NumKinds]uint64
	// overwritten counts events lost to ring overwrite; filtered counts
	// events the predicate rejected before recording.
	overwritten uint64
	filtered    uint64
}

// NewRecorder builds a recorder holding at most capacity events (older
// events are overwritten once the ring is full).
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity %d must be > 0", capacity)
	}
	return &Recorder{ring: make([]Event, capacity)}, nil
}

// SetFilter restricts recording to events the predicate accepts. A nil
// predicate (the default) records everything.
func (r *Recorder) SetFilter(keep func(Event) bool) { r.keep = keep }

// KindFilter builds a predicate accepting only the given message kinds.
func KindFilter(kinds ...protocol.Kind) func(Event) bool {
	set := make(map[protocol.Kind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return func(e Event) bool { return set[e.Kind] }
}

// ItemFilter builds a predicate accepting only events about one item.
func ItemFilter(item data.ItemID) func(Event) bool {
	return func(e Event) bool { return e.Item == item }
}

// Record adds one event (subject to the filter).
func (r *Recorder) Record(e Event) {
	if r.keep != nil && !r.keep(e) {
		r.filtered++
		return
	}
	r.total++
	if e.Kind.Valid() {
		r.perKind[e.Kind]++
	}
	if r.full {
		// The ring is at capacity: this write evicts the oldest event.
		r.overwritten++
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
}

// Tracer adapts the recorder to the network layer's hook.
func (r *Recorder) Tracer() netsim.Tracer {
	return func(at time.Duration, node int, msg protocol.Message, meta netsim.Meta) {
		r.Record(Event{
			At:      at,
			Node:    node,
			Origin:  msg.Origin,
			Kind:    msg.Kind,
			Item:    msg.Item,
			Version: msg.Version,
			Hops:    meta.Hops,
			Flood:   meta.Flood,
			FloodID: meta.FloodID,
		})
	}
}

// Len returns the number of events currently retained.
func (r *Recorder) Len() int {
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// Total returns the number of events ever recorded (>= Len once the ring
// wraps).
func (r *Recorder) Total() uint64 { return r.total }

// Summary is the recorder's lifetime accounting: everything recorded
// (per kind and total, regardless of later overwrite), how many events
// the ring evicted, and how many the filter rejected. Retained is the
// current ring occupancy; Total == Retained + Overwritten always holds.
type Summary struct {
	Total       uint64
	Retained    int
	Overwritten uint64
	Filtered    uint64
	PerKind     [protocol.NumKinds]uint64
}

// Summary returns the recorder's lifetime accounting. Unlike Events and
// CountByKind, which only see what the ring still holds, the summary is
// exact over the whole run — the telemetry snapshot exports it so ring
// overwrite is visible instead of silently shrinking counts.
func (r *Recorder) Summary() Summary {
	return Summary{
		Total:       r.total,
		Retained:    r.Len(),
		Overwritten: r.overwritten,
		Filtered:    r.filtered,
		PerKind:     r.perKind,
	}
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	return out
}

// Where returns the retained events matching pred, chronologically.
func (r *Recorder) Where(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// CountByKind tallies retained events per message kind.
func (r *Recorder) CountByKind() map[protocol.Kind]int {
	out := make(map[protocol.Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// Format renders events one per line.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
