package node

import (
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
)

// Transport is the message substrate the protocol engines run over. The
// simulator's netsim.Network satisfies it (today's deterministic path),
// and internal/wire satisfies it with real UDP sockets, so the identical
// engine binds to either without code changes.
//
// The contract mirrors the MANET broadcast-domain model the strategies
// were written against:
//
//   - Unicast delivers msg to exactly one peer, best-effort; an error
//     means the send could not even be attempted (down node, no route at
//     send time). Silent loss in flight is allowed.
//   - Flood delivers msg to every reachable node within ttl hops. The
//     origin never receives its own flood.
//   - Deliveries arrive via the per-node Receiver on the transport's
//     kernel goroutine; the engine is single-threaded on that kernel.
//   - Reachable is the MAC-layer connectivity check of §4.5: whether a
//     link-layer path currently exists between two nodes.
//   - Activity counts radio send/receive events at a node, the
//     accessibility evidence feeding the CAR coefficient.
type Transport interface {
	// Len returns the number of nodes in the broadcast domain.
	Len() int
	// Kernel returns the event kernel deliveries are scheduled on.
	Kernel() *sim.Kernel
	// SetReceiver installs node's delivery callback.
	SetReceiver(node int, r netsim.Receiver) error
	// Unicast sends msg from -> to.
	Unicast(from, to int, msg protocol.Message) error
	// Flood broadcasts msg from origin with the given hop TTL.
	Flood(origin, ttl int, msg protocol.Message) error
	// Up reports whether node is currently powered and connected.
	Up(node int) bool
	// Reachable reports whether a link-layer path exists from -> to.
	Reachable(from, to int) bool
	// Activity returns the cumulative radio activity counter for node.
	Activity(node int) uint64
}

// GeoTransport extends Transport with position awareness for the
// location-aided (GPSCE-style) strategies. Only the simulator provides
// it; a real radio has no oracle GPS registry, so strategies requiring
// it must type-assert and fail loudly when bound to a plain Transport.
type GeoTransport interface {
	Transport
	// Position returns node's current coordinates.
	Position(node int) geo.Point
	// GeoUnicast greedily geo-routes msg from -> dst toward target.
	GeoUnicast(from, dst int, target geo.Point, msg protocol.Message) error
}

// Compile-time conformance: the simulator network implements both.
var (
	_ Transport    = (*netsim.Network)(nil)
	_ GeoTransport = (*netsim.Network)(nil)
)
