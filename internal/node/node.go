// Package node provides the per-strategy plumbing that every consistency
// strategy (RPCC and the push/pull baselines) shares: query lifecycle
// bookkeeping (issue → answer/fail, with latency recording and consistency
// auditing) and the cooperative-caching fetch machinery that locates a
// copy of a missing item (the "independent mechanism for replica placement
// and for locating the nearest cache node" the paper assumes in §3).
package node

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// Query is one in-flight query request.
type Query struct {
	Seq      uint64
	Host     int
	Item     data.ItemID
	Level    consistency.Level
	IssuedAt time.Duration
	// Route records how the strategy resolved the query ("local",
	// "relay", "poll", "fetch", ...) — purely observational, surfaced in
	// telemetry query spans.
	Route string
	// Source is the node whose authority backed the answer: the host
	// itself for local/owner reads, the peer that supplied or validated
	// the copy otherwise. -1 means the strategy did not record it. Purely
	// observational, consumed by the conformance oracle.
	Source int
	// TC is the query's causal-trace context (the root span); zero when
	// tracing is off. Strategies copy it into the messages a query emits
	// so downstream spans join the query's DAG.
	TC       protocol.TraceContext
	resolved bool
}

// Resolved reports whether the query has been answered or failed.
func (q *Query) Resolved() bool { return q.resolved }

// FetchCallback receives the outcome of a fetch: the copy, the node that
// supplied it, and true on success; a zero copy, -1 and false when every
// attempt timed out. Strategies use `from` to decide how much to trust the
// copy (a reply from the item's owner is authoritative).
type FetchCallback func(k *sim.Kernel, c data.Copy, from int, ok bool)

// fetch tracks one in-flight copy search.
type fetch struct {
	host int
	item data.ItemID
	cb   FetchCallback
	tc   protocol.TraceContext
	done bool
}

// Config tunes the shared fetch machinery.
type Config struct {
	// RingTTLs is the expanding-ring search schedule for cooperative
	// fetches; each ring floods DATA_REQUEST with the given TTL and waits
	// RingTimeout before escalating.
	RingTTLs    []int
	RingTimeout time.Duration
	// DirectTimeout bounds a unicast fetch from the owner.
	DirectTimeout time.Duration
}

// DefaultConfig returns the fetch schedule used in the experiments: a
// local 4-hop ring, then the network-wide 8-hop flood (TTL_BR in Table 1).
func DefaultConfig() Config {
	return Config{
		RingTTLs:      []int{4, 8},
		RingTimeout:   500 * time.Millisecond,
		DirectTimeout: time.Second,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.RingTTLs) == 0 {
		return fmt.Errorf("node: empty ring schedule")
	}
	for _, ttl := range c.RingTTLs {
		if ttl <= 0 {
			return fmt.Errorf("node: non-positive ring TTL %d", ttl)
		}
	}
	if c.RingTimeout <= 0 {
		return fmt.Errorf("node: non-positive ring timeout %v", c.RingTimeout)
	}
	if c.DirectTimeout <= 0 {
		return fmt.Errorf("node: non-positive direct timeout %v", c.DirectTimeout)
	}
	return nil
}

// Chassis bundles the shared state. One chassis serves one strategy
// instance (one simulation run).
type Chassis struct {
	cfg     Config
	Net     Transport
	Reg     *data.Registry
	Stores  []*cache.Store
	Latency *stats.Latency
	Auditor *consistency.Auditor
	// Hub is the run's telemetry (optional; a nil hub records nothing).
	// Set it before the simulation starts.
	Hub *telemetry.Hub
	// Tracer is the run's causal-trace collector (optional; nil records
	// nothing and keeps every hot path allocation-free). Set it before
	// the simulation starts.
	Tracer *ctrace.Collector

	seq     uint64
	fetches map[uint64]*fetch

	// answerObserver, when set, sees every answered query after audit and
	// telemetry recording. The conformance oracle installs it to compare
	// served copies against its reference model.
	answerObserver func(k *sim.Kernel, q *Query, served data.Copy)

	issued      uint64
	answered    uint64
	failed      uint64
	failReasons map[string]uint64
	violations  uint64
}

// NewChassis wires the shared plumbing. All dependencies are required.
func NewChassis(cfg Config, net Transport, reg *data.Registry, stores []*cache.Store, lat *stats.Latency, aud *consistency.Auditor) (*Chassis, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if net == nil || reg == nil || lat == nil || aud == nil {
		return nil, fmt.Errorf("node: nil dependency")
	}
	if len(stores) != net.Len() {
		return nil, fmt.Errorf("node: %d stores for %d nodes", len(stores), net.Len())
	}
	if reg.Len() != net.Len() {
		return nil, fmt.Errorf("node: %d items for %d nodes (paper model is m=n)", reg.Len(), net.Len())
	}
	return &Chassis{
		cfg:         cfg,
		Net:         net,
		Reg:         reg,
		Stores:      stores,
		Latency:     lat,
		Auditor:     aud,
		fetches:     make(map[uint64]*fetch),
		failReasons: make(map[string]uint64),
	}, nil
}

// NextSeq hands out process-wide unique sequence numbers for protocol
// rounds.
func (c *Chassis) NextSeq() uint64 {
	c.seq++
	return c.seq
}

// Begin registers a new query issued by host for item at the current time.
func (c *Chassis) Begin(k *sim.Kernel, host int, item data.ItemID, level consistency.Level) *Query {
	c.issued++
	c.Hub.QueryIssued(level)
	return &Query{
		Seq:      c.NextSeq(),
		Host:     host,
		Item:     item,
		Level:    level,
		IssuedAt: k.Now(),
		Source:   -1,
		TC:       c.Tracer.StartTrace(k.Now().Nanoseconds(), host, ctrace.PhaseQuery, "query"),
	}
}

// SetAnswerObserver installs a hook invoked for every answered query,
// after auditing and telemetry. Pass nil to remove it.
func (c *Chassis) SetAnswerObserver(fn func(k *sim.Kernel, q *Query, served data.Copy)) {
	c.answerObserver = fn
}

// Answer resolves q with the served copy: it records latency, audits the
// answer against ground truth, and stores nothing (callers decide about
// caching). Double resolution is ignored so racing reply paths are safe.
func (c *Chassis) Answer(k *sim.Kernel, q *Query, served data.Copy) {
	if q == nil || q.resolved {
		return
	}
	q.resolved = true
	c.answered++
	c.Latency.Record(k.Now() - q.IssuedAt)
	c.Tracer.FinishAs(q.TC, k.Now().Nanoseconds(), q.Route)
	v, stale, err := c.Auditor.CheckStale(consistency.Answer{
		Host:       q.Host,
		Item:       q.Item,
		Level:      q.Level,
		IssuedAt:   q.IssuedAt,
		AnsweredAt: k.Now(),
		Served:     served,
	})
	if err != nil {
		// Audit errors indicate simulation bugs (unknown item, bad
		// level); surface them in the failure ledger loudly.
		c.failReasons["audit-error:"+err.Error()]++
		return
	}
	if v != consistency.ViolationNone {
		c.violations++
	}
	c.Hub.QueryAnswered(q.Level, k.Now()-q.IssuedAt, stale, v.String())
	if c.Hub.Level() >= telemetry.LevelSpans {
		c.Hub.QuerySpanRecord(telemetry.QuerySpan{
			Seq:        q.Seq,
			Host:       q.Host,
			Item:       int(q.Item),
			Level:      q.Level.String(),
			Route:      q.Route,
			Outcome:    "answered",
			Served:     uint64(served.Version),
			StaleNs:    stale.Nanoseconds(),
			Violation:  v.String(),
			IssuedNs:   q.IssuedAt.Nanoseconds(),
			ResolvedNs: k.Now().Nanoseconds(),
		})
	}
	if c.answerObserver != nil {
		c.answerObserver(k, q, served)
	}
}

// Fail resolves q unanswered, recording the reason. Queries that a
// strategy abandons (partition, timeout cascade) land here and are
// reported separately from latency so they cannot flatter the mean.
func (c *Chassis) Fail(q *Query, reason string) {
	if q == nil || q.resolved {
		return
	}
	q.resolved = true
	c.failed++
	c.failReasons[reason]++
	if c.Tracer != nil && q.TC.TraceID != 0 {
		c.Tracer.FinishAs(q.TC, c.Net.Kernel().Now().Nanoseconds(), "failed:"+reason)
	}
	c.Hub.QueryFailed(q.Level, reason)
	if c.Hub.Level() >= telemetry.LevelSpans {
		now := c.Net.Kernel().Now()
		c.Hub.QuerySpanRecord(telemetry.QuerySpan{
			Seq:        q.Seq,
			Host:       q.Host,
			Item:       int(q.Item),
			Level:      q.Level.String(),
			Route:      q.Route,
			Outcome:    "failed",
			Reason:     reason,
			IssuedNs:   q.IssuedAt.Nanoseconds(),
			ResolvedNs: now.Nanoseconds(),
		})
	}
}

// Issued returns the number of queries begun.
func (c *Chassis) Issued() uint64 { return c.issued }

// Answered returns the number of queries answered.
func (c *Chassis) Answered() uint64 { return c.answered }

// Failed returns the number of queries that failed.
func (c *Chassis) Failed() uint64 { return c.failed }

// AuditViolations returns how many answers violated their level.
func (c *Chassis) AuditViolations() uint64 { return c.violations }

// FailReasons returns failure reasons sorted by name.
func (c *Chassis) FailReasons() []ReasonCount {
	out := make([]ReasonCount, 0, len(c.failReasons))
	for r, n := range c.failReasons {
		out = append(out, ReasonCount{Reason: r, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Reason < out[j].Reason })
	return out
}

// ReasonCount is one failure-reason tally.
type ReasonCount struct {
	Reason string
	Count  uint64
}

// FetchRing searches for a copy of item with expanding-ring DATA_REQUEST
// floods from host, invoking cb exactly once with the first reply or with
// ok=false after the last ring times out. parent is the causal-trace
// context the search runs under (zero when untraced): the whole search
// becomes one fetch span whose transit/serve children the network layer
// records.
func (c *Chassis) FetchRing(k *sim.Kernel, host int, item data.ItemID, parent protocol.TraceContext, cb FetchCallback) {
	f := &fetch{host: host, item: item, cb: cb,
		tc: c.Tracer.StartChild(k.Now().Nanoseconds(), parent, host, ctrace.PhaseFetch, "ring")}
	seq := c.NextSeq()
	c.fetches[seq] = f
	c.ring(k, f, seq, 0)
}

func (c *Chassis) finishFetch(k *sim.Kernel, f *fetch, seq uint64, name string) {
	f.done = true
	delete(c.fetches, seq)
	c.Tracer.FinishAs(f.tc, k.Now().Nanoseconds(), name)
}

func (c *Chassis) ring(k *sim.Kernel, f *fetch, seq uint64, idx int) {
	if f.done {
		return
	}
	if idx >= len(c.cfg.RingTTLs) {
		c.finishFetch(k, f, seq, "ring-timeout")
		f.cb(k, data.Copy{}, -1, false)
		return
	}
	msg := protocol.Message{
		Kind:   protocol.KindDataRequest,
		Item:   f.item,
		Origin: f.host,
		Seq:    seq,
		Trace:  f.tc,
	}
	if err := c.Net.Flood(f.host, c.cfg.RingTTLs[idx], msg); err != nil {
		c.finishFetch(k, f, seq, "ring-error")
		f.cb(k, data.Copy{}, -1, false)
		return
	}
	k.After(c.cfg.RingTimeout, "node.fetch.ring", func(kk *sim.Kernel) {
		c.ring(kk, f, seq, idx+1)
	})
}

// FetchDirect asks the owner of item for its master copy with a unicast
// DATA_REQUEST, invoking cb once with the reply or with ok=false on
// timeout. parent is the causal-trace context of the fetch (zero when
// untraced).
func (c *Chassis) FetchDirect(k *sim.Kernel, host int, item data.ItemID, parent protocol.TraceContext, cb FetchCallback) {
	f := &fetch{host: host, item: item, cb: cb,
		tc: c.Tracer.StartChild(k.Now().Nanoseconds(), parent, host, ctrace.PhaseFetch, "direct")}
	seq := c.NextSeq()
	c.fetches[seq] = f
	msg := protocol.Message{
		Kind:   protocol.KindDataRequest,
		Item:   item,
		Origin: host,
		Seq:    seq,
		Trace:  f.tc,
	}
	owner := c.Reg.Owner(item)
	if err := c.Net.Unicast(host, owner, msg); err != nil {
		c.finishFetch(k, f, seq, "direct-error")
		cb(k, data.Copy{}, -1, false)
		return
	}
	k.After(c.cfg.DirectTimeout, "node.fetch.direct", func(kk *sim.Kernel) {
		if f.done {
			return
		}
		c.finishFetch(kk, f, seq, "direct-timeout")
		cb(kk, data.Copy{}, -1, false)
	})
}

// HandleDataRequest serves a DATA_REQUEST arriving at node: owners answer
// with the master copy, cache holders with their cached copy. Strategies
// route KindDataRequest deliveries here.
func (c *Chassis) HandleDataRequest(k *sim.Kernel, node int, msg protocol.Message) {
	var served data.Copy
	if c.Reg.Owner(msg.Item) == node {
		m, err := c.Reg.Master(msg.Item)
		if err != nil {
			return
		}
		served = m.Current()
	} else if cp, ok := c.Stores[node].Peek(msg.Item); ok {
		served = cp
	} else {
		return // nothing to offer
	}
	reply := protocol.Message{
		Kind:    protocol.KindDataReply,
		Item:    msg.Item,
		Origin:  node,
		Version: served.Version,
		Copy:    served,
		Seq:     msg.Seq,
	}
	if c.Tracer != nil && msg.Trace.TraceID != 0 {
		now := k.Now().Nanoseconds()
		reply.Trace = c.Tracer.Emit(msg.Trace, node, ctrace.PhaseServe, "DATA_REPLY", now, now)
	}
	// Best-effort: a failed unicast surfaces via the requester's timeout.
	_ = c.Net.Unicast(node, msg.Origin, reply)
}

// HandleDataReply resolves the pending fetch matching the reply's Seq.
// Later duplicate replies (multiple holders answered the flood) are
// dropped. Strategies route KindDataReply deliveries here.
func (c *Chassis) HandleDataReply(k *sim.Kernel, node int, msg protocol.Message) {
	f, ok := c.fetches[msg.Seq]
	if !ok || f.done || f.host != node || f.item != msg.Item {
		return
	}
	c.finishFetch(k, f, msg.Seq, "")
	f.cb(k, msg.Copy, msg.Origin, true)
}

// PendingFetches returns the number of unresolved fetches (diagnostic).
func (c *Chassis) PendingFetches() int { return len(c.fetches) }
