package node

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// staticSource pins nodes on a 200m-spaced chain (radio range 250m).
type staticSource struct{ pts []geo.Point }

func (s *staticSource) Len() int { return len(s.pts) }
func (s *staticSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

type env struct {
	k      *sim.Kernel
	net    *netsim.Network
	reg    *data.Registry
	stores []*cache.Store
	ch     *Chassis
}

func newEnv(t *testing.T, n int) *env {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(3))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := data.NewRegistry(n)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*cache.Store, n)
	for i := range stores {
		s, err := cache.NewStore(10)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	aud, err := consistency.NewAuditor(reg, 4*time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChassis(DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	// Route fetch messages for every node.
	for i := 0; i < n; i++ {
		if err := net.SetReceiver(i, func(kk *sim.Kernel, nd int, msg protocol.Message, _ netsim.Meta) {
			switch msg.Kind {
			case protocol.KindDataRequest:
				ch.HandleDataRequest(kk, nd, msg)
			case protocol.KindDataReply:
				ch.HandleDataReply(kk, nd, msg)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	return &env{k: k, net: net, reg: reg, stores: stores, ch: ch}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"empty rings", func(c *Config) { c.RingTTLs = nil }, false},
		{"zero ring ttl", func(c *Config) { c.RingTTLs = []int{0} }, false},
		{"zero ring timeout", func(c *Config) { c.RingTimeout = 0 }, false},
		{"zero direct timeout", func(c *Config) { c.DirectTimeout = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewChassisValidation(t *testing.T) {
	e := newEnv(t, 3)
	if _, err := NewChassis(DefaultConfig(), nil, e.reg, e.stores, stats.NewLatency(), e.ch.Auditor); err == nil {
		t.Error("nil net accepted")
	}
	if _, err := NewChassis(DefaultConfig(), e.net, e.reg, e.stores[:1], stats.NewLatency(), e.ch.Auditor); err == nil {
		t.Error("short stores accepted")
	}
}

func TestQueryLifecycle(t *testing.T) {
	e := newEnv(t, 3)
	q := e.ch.Begin(e.k, 1, 2, consistency.LevelWeak)
	if q.Seq == 0 || q.Resolved() {
		t.Fatalf("bad fresh query %+v", q)
	}
	m, _ := e.reg.Master(2)
	e.ch.Answer(e.k, q, m.Current())
	if !q.Resolved() {
		t.Fatal("query not resolved after Answer")
	}
	if e.ch.Issued() != 1 || e.ch.Answered() != 1 || e.ch.Failed() != 0 {
		t.Errorf("counts = %d/%d/%d", e.ch.Issued(), e.ch.Answered(), e.ch.Failed())
	}
	if e.ch.Latency.Count() != 1 {
		t.Error("latency not recorded")
	}
	if e.ch.Auditor.Answers() != 1 {
		t.Error("answer not audited")
	}
	// Double-resolution is ignored.
	e.ch.Answer(e.k, q, m.Current())
	e.ch.Fail(q, "late")
	if e.ch.Answered() != 1 || e.ch.Failed() != 0 {
		t.Error("double resolution counted")
	}
}

func TestQueryFail(t *testing.T) {
	e := newEnv(t, 3)
	q := e.ch.Begin(e.k, 1, 2, consistency.LevelStrong)
	e.ch.Fail(q, "timeout")
	if e.ch.Failed() != 1 {
		t.Error("failure not counted")
	}
	rs := e.ch.FailReasons()
	if len(rs) != 1 || rs[0].Reason != "timeout" || rs[0].Count != 1 {
		t.Errorf("FailReasons = %+v", rs)
	}
	if e.ch.Latency.Count() != 0 {
		t.Error("failed query recorded latency")
	}
}

func TestAnswerAuditsViolation(t *testing.T) {
	e := newEnv(t, 3)
	m, _ := e.reg.Master(2)
	old := m.Current()
	e.k.RunUntil(10 * time.Minute)
	if _, err := m.Update(e.k.Now()); err != nil {
		t.Fatal(err)
	}
	e.k.RunUntil(20 * time.Minute)
	q := e.ch.Begin(e.k, 1, 2, consistency.LevelStrong)
	e.ch.Answer(e.k, q, old) // stale by 10 minutes: SC violation
	if e.ch.AuditViolations() != 1 {
		t.Errorf("violations = %d, want 1", e.ch.AuditViolations())
	}
}

func TestFetchDirectFromOwner(t *testing.T) {
	e := newEnv(t, 4)
	var got data.Copy
	ok := false
	e.ch.FetchDirect(e.k, 0, 3, protocol.TraceContext{}, func(_ *sim.Kernel, c data.Copy, _ int, o bool) { got, ok = c, o })
	e.k.Run()
	if !ok {
		t.Fatal("direct fetch failed on connected chain")
	}
	m, _ := e.reg.Master(3)
	if got != m.Current() {
		t.Errorf("fetched %+v, want master copy", got)
	}
	if e.ch.PendingFetches() != 0 {
		t.Error("fetch table leaked")
	}
}

func TestFetchRingPrefersNearbyCacheCopy(t *testing.T) {
	e := newEnv(t, 6)
	// Node 1 caches item 5 (owner is node 5, far away).
	m, _ := e.reg.Master(5)
	if err := e.stores[1].Put(m.Current(), 0); err != nil {
		t.Fatal(err)
	}
	from := -1
	e.ch.FetchRing(e.k, 0, 5, protocol.TraceContext{}, func(_ *sim.Kernel, c data.Copy, f int, o bool) {
		if o {
			from = f
		}
	})
	e.k.Run()
	if from != 1 {
		t.Fatalf("ring fetch answered by node %d, want nearby holder 1", from)
	}
}

func TestFetchRingFallsBackToOwner(t *testing.T) {
	e := newEnv(t, 6)
	// Nobody caches item 5; only the owner (node 5, five hops away,
	// beyond the first TTL-4 ring) can answer via the TTL-8 ring.
	ok := false
	e.ch.FetchRing(e.k, 0, 5, protocol.TraceContext{}, func(_ *sim.Kernel, c data.Copy, _ int, o bool) { ok = o })
	e.k.Run()
	if !ok {
		t.Fatal("ring fetch did not fall back to network-wide flood")
	}
}

func TestFetchRingFailsWhenNoHolderReachable(t *testing.T) {
	// Partitioned: requester alone on an island.
	k := sim.NewKernel()
	pts := []geo.Point{{X: 0}, {X: 9000}, {X: 9200}}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := data.NewRegistry(3)
	stores := make([]*cache.Store, 3)
	for i := range stores {
		stores[i], _ = cache.NewStore(5)
	}
	aud, _ := consistency.NewAuditor(reg, time.Minute, 0)
	ch, err := NewChassis(DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	called, ok := false, true
	ch.FetchRing(k, 0, 2, protocol.TraceContext{}, func(_ *sim.Kernel, _ data.Copy, _ int, o bool) { called, ok = true, o })
	k.Run()
	if !called {
		t.Fatal("callback never invoked")
	}
	if ok {
		t.Fatal("fetch across partition succeeded")
	}
	if ch.PendingFetches() != 0 {
		t.Error("fetch table leaked after failure")
	}
}

func TestFetchDirectTimeout(t *testing.T) {
	k := sim.NewKernel()
	pts := []geo.Point{{X: 0}, {X: 9000}}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := data.NewRegistry(2)
	stores := []*cache.Store{}
	for i := 0; i < 2; i++ {
		s, _ := cache.NewStore(5)
		stores = append(stores, s)
	}
	aud, _ := consistency.NewAuditor(reg, time.Minute, 0)
	ch, err := NewChassis(DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	var ok = true
	ch.FetchDirect(k, 0, 1, protocol.TraceContext{}, func(_ *sim.Kernel, _ data.Copy, _ int, o bool) { ok = o })
	k.Run()
	if ok {
		t.Fatal("unreachable owner fetch succeeded")
	}
}

func TestDuplicateRepliesIgnored(t *testing.T) {
	e := newEnv(t, 4)
	// Two holders of item 3: nodes 1 and 2 both cache it; both answer the
	// flood, the callback must fire once.
	m, _ := e.reg.Master(3)
	e.stores[1].Put(m.Current(), 0)
	e.stores[2].Put(m.Current(), 0)
	calls := 0
	e.ch.FetchRing(e.k, 0, 3, protocol.TraceContext{}, func(*sim.Kernel, data.Copy, int, bool) { calls++ })
	e.k.Run()
	if calls != 1 {
		t.Fatalf("callback fired %d times, want 1", calls)
	}
}

func TestNextSeqUnique(t *testing.T) {
	e := newEnv(t, 3)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := e.ch.NextSeq()
		if seen[s] {
			t.Fatal("duplicate seq")
		}
		seen[s] = true
	}
}
