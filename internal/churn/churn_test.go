package churn

import (
	"strings"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/sim"
)

func testConfig() Config {
	return Config{MeanUp: 5 * time.Minute, MeanDown: time.Minute}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", testConfig(), true},
		{"disabled ignores durations", Config{Disabled: true}, true},
		{"zero up", Config{MeanDown: time.Minute}, false},
		{"zero down", Config{MeanUp: time.Minute}, false},
		{"negative up", Config{MeanUp: -time.Second, MeanDown: time.Minute}, false},
		{"negative down", Config{MeanUp: time.Minute, MeanDown: -time.Second}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
			if err != nil && !strings.Contains(err.Error(), "Mean") {
				t.Errorf("Validate() error %q does not name the offending field", err)
			}
		})
	}
}

func TestNewProcessValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewProcess(testConfig(), 0, k); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewProcess(testConfig(), 5, nil); err == nil {
		t.Error("nil kernel accepted")
	}
}

func TestAllConnectedInitially(t *testing.T) {
	k := sim.NewKernel()
	p, err := NewProcess(testConfig(), 10, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !p.Connected(i) {
			t.Errorf("node %d not connected at t=0", i)
		}
		if p.Switches(i) != 0 {
			t.Errorf("node %d has %d switches at t=0", i, p.Switches(i))
		}
	}
}

func TestTransitionsHappen(t *testing.T) {
	k := sim.NewKernel(sim.WithHorizon(2 * time.Hour))
	p, err := NewProcess(testConfig(), 20, k)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	total := uint64(0)
	for i := 0; i < 20; i++ {
		total += p.Switches(i)
	}
	// Mean up 5m, mean down 1m: each node flips roughly every 3m on
	// average, ~40 flips in 2h; 20 nodes => hundreds. Just require some.
	if total < 100 {
		t.Fatalf("only %d transitions in 2h across 20 nodes", total)
	}
}

func TestDisabledChurnNeverFlips(t *testing.T) {
	k := sim.NewKernel(sim.WithHorizon(2 * time.Hour))
	p, err := NewProcess(Config{Disabled: true}, 10, k)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if !p.Connected(i) || p.Switches(i) != 0 {
			t.Fatalf("node %d flipped with churn disabled", i)
		}
	}
}

func TestListenerSeesTransitions(t *testing.T) {
	k := sim.NewKernel(sim.WithHorizon(time.Hour))
	p, err := NewProcess(testConfig(), 5, k)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	lastTime := time.Duration(-1)
	p.Subscribe(func(node int, s State, at time.Duration) {
		events++
		if at < lastTime {
			t.Errorf("listener time went backwards: %v after %v", at, lastTime)
		}
		lastTime = at
		if s != StateConnected && s != StateDisconnected {
			t.Errorf("listener got invalid state %v", s)
		}
	})
	k.Run()
	var total uint64
	for i := 0; i < 5; i++ {
		total += p.Switches(i)
	}
	if uint64(events) != total {
		t.Fatalf("listener saw %d events, switches sum %d", events, total)
	}
}

func TestDownMaskMatchesState(t *testing.T) {
	k := sim.NewKernel()
	p, err := NewProcess(testConfig(), 6, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ForceState(k, 2, StateDisconnected); err != nil {
		t.Fatal(err)
	}
	mask := p.DownMask(nil)
	for i, down := range mask {
		if down != !p.Connected(i) {
			t.Errorf("mask[%d] = %v, Connected = %v", i, down, p.Connected(i))
		}
	}
	if !mask[2] {
		t.Error("forced-down node not in mask")
	}
	// Reuse buffer.
	mask2 := p.DownMask(mask)
	if &mask2[0] != &mask[0] {
		t.Error("DownMask reallocated despite capacity")
	}
}

func TestForceState(t *testing.T) {
	k := sim.NewKernel()
	p, _ := NewProcess(Config{Disabled: true}, 3, k)
	if err := p.ForceState(k, 9, StateDisconnected); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := p.ForceState(k, 0, StateInvalid); err == nil {
		t.Error("invalid state accepted")
	}
	if err := p.ForceState(k, 0, StateDisconnected); err != nil {
		t.Fatal(err)
	}
	if p.Connected(0) {
		t.Error("node still connected after ForceState")
	}
	if p.Switches(0) != 1 {
		t.Errorf("Switches = %d, want 1", p.Switches(0))
	}
	// Same-state force is a no-op.
	if err := p.ForceState(k, 0, StateDisconnected); err != nil {
		t.Fatal(err)
	}
	if p.Switches(0) != 1 {
		t.Errorf("no-op force incremented switches to %d", p.Switches(0))
	}
}

func TestSetFrozenHoldsStateAgainstChurn(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(7), sim.WithHorizon(time.Hour))
	cfg := Config{MeanUp: time.Minute, MeanDown: 30 * time.Second}
	p, err := NewProcess(cfg, 4, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetFrozen(99, true); err == nil {
		t.Error("out-of-range node accepted")
	}
	// Crash node 2 at t=0: freeze, then force disconnected.
	if err := p.SetFrozen(2, true); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceState(k, 2, StateDisconnected); err != nil {
		t.Fatal(err)
	}
	forcedSwitches := p.Switches(2)
	k.Run()
	// An hour of churn with a one-minute mean dwell flips unfrozen nodes
	// dozens of times; the frozen node must not have moved at all.
	if p.Connected(2) {
		t.Error("frozen node reconnected under churn")
	}
	if got := p.Switches(2); got != forcedSwitches {
		t.Errorf("frozen node switched %d times after freeze", got-forcedSwitches)
	}
	moved := false
	for _, i := range []int{0, 1, 3} {
		if p.Switches(i) > 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("no unfrozen node ever flipped — churn not running")
	}
	// Restart: unfreeze + force connected; churn resumes control.
	if err := p.SetFrozen(2, false); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceState(k, 2, StateConnected); err != nil {
		t.Fatal(err)
	}
	if !p.Connected(2) {
		t.Error("node not connected after restart")
	}
}

func TestFreezeDoesNotPerturbOtherNodes(t *testing.T) {
	run := func(freeze bool) []uint64 {
		k := sim.NewKernel(sim.WithSeed(42), sim.WithHorizon(time.Hour))
		p, err := NewProcess(Config{MeanUp: time.Minute, MeanDown: 30 * time.Second}, 6, k)
		if err != nil {
			t.Fatal(err)
		}
		if freeze {
			k.At(10*time.Minute, "freeze", func(kk *sim.Kernel) {
				p.SetFrozen(5, true)
				p.ForceState(kk, 5, StateDisconnected)
			})
		}
		k.Run()
		out := make([]uint64, 5)
		for i := range out {
			out[i] = p.Switches(i)
		}
		return out
	}
	base, frozen := run(false), run(true)
	for i := range base {
		if base[i] != frozen[i] {
			t.Fatalf("node %d timeline perturbed by freezing node 5: %d vs %d switches",
				i, base[i], frozen[i])
		}
	}
}

func TestStateString(t *testing.T) {
	if StateConnected.String() != "connected" ||
		StateDisconnected.String() != "disconnected" ||
		StateInvalid.String() != "invalid" {
		t.Error("State.String mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		k := sim.NewKernel(sim.WithSeed(99), sim.WithHorizon(time.Hour))
		p, _ := NewProcess(testConfig(), 10, k)
		k.Run()
		out := make([]uint64, 10)
		for i := range out {
			out[i] = p.Switches(i)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at node %d: %d vs %d", i, a[i], b[i])
		}
	}
}
