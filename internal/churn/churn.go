// Package churn models host disconnection and reconnection. The paper's
// Table 1 gives each peer a "switching interval" (I_Switch, default five
// minutes): peers alternate between connected and disconnected states with
// exponentially distributed dwell times, and each transition increments
// the N_s counter that feeds the peer switching rate (PSR, Eq 4.2.4).
package churn

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/sim"
)

// State is a host's connectivity state.
type State int

// Connectivity states. Following the style guide, the meaningful values
// start at 1 so the zero value is detectably invalid.
const (
	StateInvalid State = iota
	StateConnected
	StateDisconnected
)

// String renders the state for traces.
func (s State) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateDisconnected:
		return "disconnected"
	default:
		return "invalid"
	}
}

// Config parameterises the churn process.
type Config struct {
	// MeanUp is the mean connected dwell time. The paper's I_Switch.
	MeanUp time.Duration
	// MeanDown is the mean disconnected dwell time. Disconnections in a
	// MANET are typically much shorter than connected periods; the
	// experiment harness defaults this to a fraction of MeanUp.
	MeanDown time.Duration
	// Disabled turns churn off entirely: every node stays connected.
	Disabled bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Disabled {
		return nil
	}
	if c.MeanUp <= 0 {
		return fmt.Errorf("churn: MeanUp %v must be > 0", c.MeanUp)
	}
	if c.MeanDown <= 0 {
		return fmt.Errorf("churn: MeanDown %v must be > 0", c.MeanDown)
	}
	return nil
}

// Listener observes state transitions; the network layer uses it to tear
// down in-flight deliveries and the protocol layer to trigger reconnection
// repair (GET_NEW, §4.5).
type Listener func(node int, s State, at time.Duration)

// Process drives the on/off state of every node.
type Process struct {
	cfg      Config
	rng      *rand.Rand
	state    []State
	switches []uint64 // N_s per node
	// phase is the state the churn schedule *would* have the node in. It
	// oscillates on every scheduled flip regardless of freezes, so the
	// dwell-mean chosen for each exponential draw — and therefore the
	// shared RNG stream's draw sequence — is identical whether or not any
	// node is frozen. state tracks phase except while frozen/forced.
	phase     []State
	frozen    []bool // frozen nodes ignore scheduled flips (crash faults)
	listeners []Listener
}

// NewProcess creates the churn process for n nodes, all initially
// connected, and schedules their first transitions on k.
func NewProcess(cfg Config, n int, k *sim.Kernel) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("churn: need at least one node, got %d", n)
	}
	if k == nil {
		return nil, fmt.Errorf("churn: nil kernel")
	}
	p := &Process{
		cfg:      cfg,
		rng:      k.Stream("churn"),
		state:    make([]State, n),
		switches: make([]uint64, n),
		phase:    make([]State, n),
		frozen:   make([]bool, n),
	}
	for i := range p.state {
		p.state[i] = StateConnected
		p.phase[i] = StateConnected
	}
	if !cfg.Disabled {
		for i := 0; i < n; i++ {
			p.scheduleTransition(k, i)
		}
	}
	return p, nil
}

// expDraw samples an exponential dwell with the given mean, floored at one
// millisecond so transitions never pile up at the same instant.
func (p *Process) expDraw(mean time.Duration) time.Duration {
	d := time.Duration(p.rng.ExpFloat64() * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (p *Process) scheduleTransition(k *sim.Kernel, node int) {
	mean := p.cfg.MeanUp
	if p.phase[node] == StateDisconnected {
		mean = p.cfg.MeanDown
	}
	k.After(p.expDraw(mean), "churn.flip", func(kk *sim.Kernel) {
		p.flip(kk, node)
		p.scheduleTransition(kk, node)
	})
}

func (p *Process) flip(k *sim.Kernel, node int) {
	if p.phase[node] == StateConnected {
		p.phase[node] = StateDisconnected
	} else {
		p.phase[node] = StateConnected
	}
	if p.frozen[node] {
		// A frozen node (crashed, under fault injection) keeps its forced
		// state; the phase keeps oscillating so the RNG draw pattern —
		// and therefore every other node's timeline — is unchanged by
		// the freeze.
		return
	}
	if p.state[node] == p.phase[node] {
		// Already there (a ForceState landed on the schedule's side).
		return
	}
	p.state[node] = p.phase[node]
	p.switches[node]++
	for _, l := range p.listeners {
		l(node, p.state[node], k.Now())
	}
}

// Subscribe registers a transition listener. Must be called during setup,
// before the kernel runs.
func (p *Process) Subscribe(l Listener) {
	if l != nil {
		p.listeners = append(p.listeners, l)
	}
}

// Connected reports whether node is currently connected.
func (p *Process) Connected(node int) bool {
	return node >= 0 && node < len(p.state) && p.state[node] == StateConnected
}

// Switches returns node's cumulative transition count (the paper's N_s).
func (p *Process) Switches(node int) uint64 {
	if node < 0 || node >= len(p.switches) {
		return 0
	}
	return p.switches[node]
}

// DownMask fills dst with the per-node disconnected flags for the radio
// layer, allocating when needed.
func (p *Process) DownMask(dst []bool) []bool {
	if cap(dst) < len(p.state) {
		dst = make([]bool, len(p.state))
	}
	dst = dst[:len(p.state)]
	for i, s := range p.state {
		dst[i] = s == StateDisconnected
	}
	return dst
}

// SetFrozen marks a node as frozen (or unfreezes it). While frozen, the
// node ignores its scheduled churn flips — only ForceState moves it. The
// fault plane uses this to model crashes: freeze + force disconnected,
// then unfreeze + force connected at restart.
func (p *Process) SetFrozen(node int, frozen bool) error {
	if node < 0 || node >= len(p.frozen) {
		return fmt.Errorf("churn: node %d out of range", node)
	}
	p.frozen[node] = frozen
	return nil
}

// ForceState sets a node's state directly, notifying listeners. Tests and
// fault-injection scenarios use it to create targeted disconnections. It
// applies even to frozen nodes — it is how the fault plane moves them.
func (p *Process) ForceState(k *sim.Kernel, node int, s State) error {
	if node < 0 || node >= len(p.state) {
		return fmt.Errorf("churn: node %d out of range", node)
	}
	if s != StateConnected && s != StateDisconnected {
		return fmt.Errorf("churn: invalid state %v", s)
	}
	if p.state[node] == s {
		return nil
	}
	p.state[node] = s
	p.switches[node]++
	for _, l := range p.listeners {
		l(node, s, k.Now())
	}
	return nil
}
