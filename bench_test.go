package rpcc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (§5). One benchmark per figure: each iteration runs
// the figure's full parameter sweep (one simulation per strategy × sweep
// point) at a reduced simulated duration, and reports the figure's
// y-values as custom benchmark metrics so the series appear directly in
// `go test -bench` output. Absolute numbers depend on the simulated
// duration; the SHAPES — who wins, by what factor, where the crossovers
// fall — are the reproduction targets and are asserted in the test suite.
//
// Figure index:
//
//	BenchmarkFig7a…c — network traffic vs update interval / request
//	                   interval / cache number (paper Fig 7)
//	BenchmarkFig8a…c — query latency over the same sweeps (paper Fig 8)
//	BenchmarkFig9a/b — traffic and latency vs invalidation TTL on the
//	                   single-hot-item topology (paper Fig 9)
//	BenchmarkRelayCountVsTTL — the §5.3 relay-population series
//	BenchmarkAblation*       — design-choice ablations (DESIGN.md A1–A4)
//	BenchmarkSim*            — substrate micro-benchmarks
import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/radio"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// benchSimTime keeps one full figure sweep around a few seconds of wall
// time. Use cmd/figures -simtime 5h for the paper-duration reproduction.
const benchSimTime = 10 * time.Minute

// benchFigure runs the identified figure sweep each iteration and reports
// the mean y-value of every strategy's series as a custom metric.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	var spec experiment.SweepSpec
	found := false
	for _, s := range experiment.AllFigureSpecs() {
		if s.ID == id {
			spec, found = s, true
			break
		}
	}
	if !found {
		b.Fatalf("unknown figure %q", id)
	}
	base := experiment.DefaultConfig(experiment.StrategyRPCCSC, 1)
	base.SimTime = benchSimTime

	var fig experiment.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiment.RunSweep(spec, base)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, series := range fig.Series {
		var sum float64
		for _, pt := range series.Points {
			sum += spec.Metric(pt.Result)
		}
		mean := sum / float64(len(series.Points))
		b.ReportMetric(mean, fmt.Sprintf("%s_%s", series.Strategy, yUnit(spec)))
	}
}

func yUnit(spec experiment.SweepSpec) string {
	if spec.YLabel == "messages" {
		return "msgs"
	}
	if spec.YLabel == "relay peers" {
		return "relays"
	}
	return "ms"
}

// BenchmarkFig7aTrafficVsUpdateInterval regenerates paper Fig 7(a).
func BenchmarkFig7aTrafficVsUpdateInterval(b *testing.B) { benchFigure(b, "fig7a") }

// BenchmarkFig7bTrafficVsQueryInterval regenerates paper Fig 7(b).
func BenchmarkFig7bTrafficVsQueryInterval(b *testing.B) { benchFigure(b, "fig7b") }

// BenchmarkFig7cTrafficVsCacheNum regenerates paper Fig 7(c).
func BenchmarkFig7cTrafficVsCacheNum(b *testing.B) { benchFigure(b, "fig7c") }

// BenchmarkFig8aLatencyVsUpdateInterval regenerates paper Fig 8(a).
func BenchmarkFig8aLatencyVsUpdateInterval(b *testing.B) { benchFigure(b, "fig8a") }

// BenchmarkFig8bLatencyVsQueryInterval regenerates paper Fig 8(b).
func BenchmarkFig8bLatencyVsQueryInterval(b *testing.B) { benchFigure(b, "fig8b") }

// BenchmarkFig8cLatencyVsCacheNum regenerates paper Fig 8(c).
func BenchmarkFig8cLatencyVsCacheNum(b *testing.B) { benchFigure(b, "fig8c") }

// BenchmarkFig9aTrafficVsTTL regenerates paper Fig 9(a).
func BenchmarkFig9aTrafficVsTTL(b *testing.B) { benchFigure(b, "fig9a") }

// BenchmarkFig9bLatencyVsTTL regenerates paper Fig 9(b).
func BenchmarkFig9bLatencyVsTTL(b *testing.B) { benchFigure(b, "fig9b") }

// BenchmarkRelayCountVsTTL regenerates the §5.3 relay-population series
// (DESIGN.md ablation A3).
func BenchmarkRelayCountVsTTL(b *testing.B) { benchFigure(b, "relay-count") }

// BenchmarkAblationOmega sweeps the history weight ω of Eq 4.2.2–4.2.5
// (DESIGN.md A1) and reports the relay population and traffic under each.
func BenchmarkAblationOmega(b *testing.B) {
	omegas := []float64{0, 0.2, 0.5, 1}
	results := make([]experiment.Result, len(omegas))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, omega := range omegas {
			cfg := experiment.DefaultConfig(experiment.StrategyRPCCSC, 1)
			cfg.SimTime = benchSimTime
			cfg.Omega = omega
			r, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[j] = r
		}
	}
	b.StopTimer()
	for j, omega := range omegas {
		b.ReportMetric(float64(results[j].RelayCount), fmt.Sprintf("omega%.1f_relays", omega))
	}
}

// BenchmarkAblationAdaptivePull compares the push-with-adaptive-pull
// extension against simple pull (DESIGN.md A2): same workload, report
// both traffic totals.
func BenchmarkAblationAdaptivePull(b *testing.B) {
	var adaptive, pull experiment.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []experiment.StrategyKind{experiment.StrategyAdaptive, experiment.StrategyPull} {
			cfg := experiment.DefaultConfig(s, 1)
			cfg.SimTime = benchSimTime
			r, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if s == experiment.StrategyAdaptive {
				adaptive = r
			} else {
				pull = r
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(adaptive.TotalTx), "adaptive_msgs")
	b.ReportMetric(float64(pull.TotalTx), "pull_msgs")
	b.ReportMetric(float64(adaptive.MeanLatency.Milliseconds()), "adaptive_ms")
}

// BenchmarkAblationEagerRefresh quantifies the eager relay-refresh
// extension (DESIGN.md A4): RPCC(SC) with and without it.
func BenchmarkAblationEagerRefresh(b *testing.B) {
	var eager, faithful experiment.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, disable := range []bool{false, true} {
			cfg := experiment.DefaultConfig(experiment.StrategyRPCCSC, 1)
			cfg.SimTime = benchSimTime
			cfg.DisableEagerRefresh = disable
			r, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if disable {
				faithful = r
			} else {
				eager = r
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(eager.TotalTx), "eager_msgs")
	b.ReportMetric(float64(faithful.TotalTx), "fig6c_msgs")
	b.ReportMetric(float64(eager.MeanLatency.Milliseconds()), "eager_ms")
	b.ReportMetric(float64(faithful.MeanLatency.Milliseconds()), "fig6c_ms")
}

// BenchmarkSimKernelEvents measures raw discrete-event throughput.
func BenchmarkSimKernelEvents(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	var tick func(*sim.Kernel)
	n := 0
	tick = func(kk *sim.Kernel) {
		n++
		if n < b.N {
			kk.After(time.Millisecond, "tick", tick)
		}
	}
	b.ResetTimer()
	k.After(time.Millisecond, "tick", tick)
	k.Run()
}

// legacyHotPath selects the pre-optimisation code paths (per-call BFS, no
// route cache, O(n²) pairwise rebuilds without buffer reuse) so the same
// benchmark names can be compared across modes with benchstat — see
// `make bench-compare`.
func legacyHotPath() bool { return os.Getenv("RPCC_LEGACY_HOTPATH") == "1" }

// benchPoints draws the Table 1 geometry: 50 nodes uniform on 1.5×1.5 km.
func benchPoints(b *testing.B, n int) []geo.Point {
	b.Helper()
	terrain, err := geo.NewTerrain(1500, 1500)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = terrain.RandomPoint(r)
	}
	return pts
}

// BenchmarkRadioGraphBuild measures the unit-disk snapshot rebuild that
// runs every topology-refresh interval (50 nodes, Table 1 geometry):
// spatial-grid build into a reused builder, or — under
// RPCC_LEGACY_HOTPATH=1 — the original fresh O(n²) pairwise build.
func BenchmarkRadioGraphBuild(b *testing.B) {
	b.ReportAllocs()
	pts := benchPoints(b, 50)
	legacy := legacyHotPath()
	builder := radio.NewGraphBuilder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if legacy {
			_, err = radio.NewGraphBuilder().BuildPairwise(pts, nil, 250, uint64(i))
		} else {
			_, err = builder.Build(pts, nil, 250, uint64(i))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRadioBFS measures the shortest-path query used per unicast
// hop: memoized route-table lookups, or per-call BFS under
// RPCC_LEGACY_HOTPATH=1.
func BenchmarkRadioBFS(b *testing.B) {
	b.ReportAllocs()
	pts := benchPoints(b, 50)
	g, err := radio.NewGraph(pts, nil, 250, 0)
	if err != nil {
		b.Fatal(err)
	}
	g.SetRouteCache(!legacyHotPath())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NextHop(i%50, (i+25)%50)
	}
}

// benchNetwork wires a 50-node network over a frozen random layout for
// the message-level hot-path benchmarks.
func benchNetwork(b *testing.B) (*sim.Kernel, *netsim.Network) {
	b.Helper()
	pts := benchPoints(b, 50)
	k := sim.NewKernel(sim.WithSeed(1))
	cfg := netsim.DefaultConfig()
	cfg.DisableRouteCache = legacyHotPath()
	net, err := netsim.New(cfg, k, staticField(pts), nil, nil, stats.NewTraffic())
	if err != nil {
		b.Fatal(err)
	}
	return k, net
}

// staticField adapts a fixed layout to netsim.PositionSource.
type staticField []geo.Point

func (f staticField) Len() int { return len(f) }

func (f staticField) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(f) {
		dst = make([]geo.Point, len(f))
	}
	dst = dst[:len(f)]
	copy(dst, f)
	return dst
}

// BenchmarkUnicastRouting measures one end-to-end unicast — route lookups
// at every hop plus the kernel events carrying it — per iteration.
func BenchmarkUnicastRouting(b *testing.B) {
	b.ReportAllocs()
	k, net := benchNetwork(b)
	msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Version: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Origin = i % 50
		if err := net.Unicast(i%50, (i+25)%50, msg); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}

// BenchmarkFloodStorm measures one TTL-8 network-wide flood per
// iteration: the duplicate-suppression state, the per-neighbour
// retransmissions, and the kernel events behind them.
func BenchmarkFloodStorm(b *testing.B) {
	b.ReportAllocs()
	k, net := benchNetwork(b)
	msg := protocol.Message{Kind: protocol.KindInvalidation, Item: 1, Version: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := i % 50
		msg.Origin = origin
		if err := net.Flood(origin, 8, msg); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}

// BenchmarkFullScenarioRPCC measures end-to-end simulation speed: one
// Table 1 run (50 peers, RPCC-SC) per iteration at benchSimTime.
func BenchmarkFullScenarioRPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultConfig(experiment.StrategyRPCCSC, int64(i)+1)
		cfg.SimTime = benchSimTime
		if _, err := experiment.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDSRRouting swaps the idealised oracle routing layer
// for DSR-style on-demand source routing (DESIGN.md A5) and reports the
// traffic with routing control overhead included.
func BenchmarkAblationDSRRouting(b *testing.B) {
	var oracle, dsr experiment.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, useDSR := range []bool{false, true} {
			cfg := experiment.DefaultConfig(experiment.StrategyRPCCSC, 1)
			cfg.SimTime = benchSimTime
			cfg.UseDSRRouting = useDSR
			r, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if useDSR {
				dsr = r
			} else {
				oracle = r
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(oracle.TotalTx), "oracle_msgs")
	b.ReportMetric(float64(dsr.TotalTx), "dsr_msgs")
	b.ReportMetric(float64(dsr.MeanLatency.Milliseconds()), "dsr_ms")
	b.ReportMetric(100*dsr.AnswerRate(), "dsr_answered_pct")
}

// BenchmarkAblationAdaptiveTTN enables RPCC's adaptive invalidation
// interval (§6 future work, DESIGN.md A6) under a slow-update workload,
// where quiet sources should save most of their periodic floods.
func BenchmarkAblationAdaptiveTTN(b *testing.B) {
	var fixed, adaptive experiment.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, on := range []bool{false, true} {
			cfg := experiment.DefaultConfig(experiment.StrategyRPCCDC, 1)
			cfg.SimTime = benchSimTime
			cfg.UpdateInterval = 8 * time.Minute // quiet items
			cfg.AdaptiveTTN = on
			r, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if on {
				adaptive = r
			} else {
				fixed = r
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fixed.TotalTx), "fixedTTN_msgs")
	b.ReportMetric(float64(adaptive.TotalTx), "adaptiveTTN_msgs")
}

// BenchmarkAblationLossRate sweeps the wireless loss rate (DESIGN.md A7)
// and reports RPCC(SC)'s answer rate and traffic under each — the
// robustness dimension the paper's §1 problem statement raises ("higher
// packets loss rate") but its evaluation does not quantify.
func BenchmarkAblationLossRate(b *testing.B) {
	rates := []float64{0, 0.1, 0.2, 0.3}
	results := make([]experiment.Result, len(rates))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, rate := range rates {
			cfg := experiment.DefaultConfig(experiment.StrategyRPCCSC, 1)
			cfg.SimTime = benchSimTime
			cfg.LossRate = rate
			r, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[j] = r
		}
	}
	b.StopTimer()
	for j, rate := range rates {
		b.ReportMetric(100*results[j].AnswerRate(), fmt.Sprintf("loss%.0f%%_answered_pct", 100*rate))
	}
}

// BenchmarkAblationGPSCE runs the location-aided comparator from the
// paper's related work (DESIGN.md A8): eager geo-unicast invalidation
// with per-source state. Reports traffic, latency and the staleness
// violations its lost invalidations cause — the quantified version of
// the paper's qualitative argument against GPS-based schemes.
func BenchmarkAblationGPSCE(b *testing.B) {
	var gpsce, push experiment.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []experiment.StrategyKind{experiment.StrategyGPSCE, experiment.StrategyPush} {
			cfg := experiment.DefaultConfig(s, 1)
			cfg.SimTime = benchSimTime
			r, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if s == experiment.StrategyGPSCE {
				gpsce = r
			} else {
				push = r
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(gpsce.TotalTx), "gpsce_msgs")
	b.ReportMetric(float64(push.TotalTx), "push_msgs")
	b.ReportMetric(float64(gpsce.MeanLatency.Milliseconds()), "gpsce_ms")
	b.ReportMetric(float64(gpsce.Violations), "gpsce_staleViol")
}

// BenchmarkAblationMobilityModel reruns the default scenario under the
// random-direction mobility model (DESIGN.md A9): if the strategy
// ordering held only under random waypoint's centre-density artefact, it
// would show here.
func BenchmarkAblationMobilityModel(b *testing.B) {
	type cell struct{ wp, rd experiment.Result }
	results := map[experiment.StrategyKind]*cell{}
	strategies := []experiment.StrategyKind{experiment.StrategyPull, experiment.StrategyRPCCSC}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range strategies {
			c := &cell{}
			for _, rd := range []bool{false, true} {
				cfg := experiment.DefaultConfig(s, 1)
				cfg.SimTime = benchSimTime
				cfg.RandomDirection = rd
				r, err := experiment.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if rd {
					c.rd = r
				} else {
					c.wp = r
				}
			}
			results[s] = c
		}
	}
	b.StopTimer()
	for _, s := range strategies {
		b.ReportMetric(float64(results[s].wp.TotalTx), fmt.Sprintf("%s_waypoint_msgs", s))
		b.ReportMetric(float64(results[s].rd.TotalTx), fmt.Sprintf("%s_randdir_msgs", s))
	}
}

// BenchmarkAblationSerializedRadio swaps the idealised parallel radio for
// a single serialized transmitter per node (DESIGN.md A10): flood-heavy
// pull should feel MAC queueing hardest.
func BenchmarkAblationSerializedRadio(b *testing.B) {
	type pair struct{ ideal, serial experiment.Result }
	results := map[experiment.StrategyKind]*pair{}
	strategies := []experiment.StrategyKind{experiment.StrategyPull, experiment.StrategyRPCCSC}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range strategies {
			p := &pair{}
			for _, serialize := range []bool{false, true} {
				cfg := experiment.DefaultConfig(s, 1)
				cfg.SimTime = benchSimTime
				cfg.SerializeTx = serialize
				r, err := experiment.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if serialize {
					p.serial = r
				} else {
					p.ideal = r
				}
			}
			results[s] = p
		}
	}
	b.StopTimer()
	for _, s := range strategies {
		b.ReportMetric(float64(results[s].ideal.MeanLatency.Milliseconds()), fmt.Sprintf("%s_ideal_ms", s))
		b.ReportMetric(float64(results[s].serial.MeanLatency.Milliseconds()), fmt.Sprintf("%s_mac_ms", s))
	}
}
