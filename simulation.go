package rpcc

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/energy"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/mobility"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// SimOptions configures a scriptable Simulation. The zero value is not
// usable; start from DefaultSimOptions.
type SimOptions struct {
	// Peers is the number of mobile hosts; host i owns data item i.
	Peers int
	// AreaMeters is the side of the square terrain.
	AreaMeters float64
	// RadioRange is the unit-disk communication range in metres.
	RadioRange float64
	// CacheCapacity is each host's cache size (C_Num).
	CacheCapacity int
	// Seed makes the run reproducible.
	Seed int64
	// MinSpeed/MaxSpeed/Pause parameterise random-waypoint mobility.
	MinSpeed, MaxSpeed float64
	Pause              time.Duration
	// EnableChurn turns on random disconnection/reconnection with the
	// given mean dwell times. Scripted Disconnect/Reconnect work either
	// way.
	EnableChurn      bool
	MeanUp, MeanDown time.Duration
	// Protocol is the RPCC parameterisation (Table 1 defaults if zero).
	Protocol core.Config
	// DeltaBound is the Δ used by the consistency auditor for LevelDelta
	// answers; defaults to Protocol.TTP.
	DeltaBound time.Duration
}

// DefaultSimOptions returns a compact, well-connected 20-peer setup
// suitable for interactive scenarios and examples (the field is dense
// enough that partitions are rare; use the Scenario API for the paper's
// sparser Table 1 geometry).
func DefaultSimOptions(seed int64) SimOptions {
	return SimOptions{
		Peers:         20,
		AreaMeters:    700,
		RadioRange:    250,
		CacheCapacity: 10,
		Seed:          seed,
		MinSpeed:      0.5,
		MaxSpeed:      3,
		Pause:         time.Minute,
		EnableChurn:   false,
		MeanUp:        5 * time.Minute,
		MeanDown:      30 * time.Second,
		Protocol:      core.DefaultConfig(),
	}
}

// Simulation is a scriptable RPCC deployment: schedule queries, updates
// and fault injections at chosen virtual times, then advance the clock
// with RunFor and inspect the outcome.
type Simulation struct {
	k       *sim.Kernel
	net     *netsim.Network
	reg     *data.Registry
	stores  []*cache.Store
	chassis *node.Chassis
	eng     *core.Engine
	proc    *churn.Process
	lat     *stats.Latency
	started bool
}

// NewSimulation builds the full stack described by opts.
func NewSimulation(opts SimOptions) (*Simulation, error) {
	if opts.Peers <= 1 {
		return nil, fmt.Errorf("rpcc: need at least 2 peers, got %d", opts.Peers)
	}
	if opts.Protocol.TTN == 0 {
		opts.Protocol = core.DefaultConfig()
	}
	if opts.DeltaBound <= 0 {
		opts.DeltaBound = opts.Protocol.TTP
	}
	k := sim.NewKernel(sim.WithSeed(opts.Seed))
	terrain, err := geo.NewTerrain(opts.AreaMeters, opts.AreaMeters)
	if err != nil {
		return nil, err
	}
	field, err := mobility.NewField(mobility.Config{
		Terrain:    terrain,
		MinSpeed:   opts.MinSpeed,
		MaxSpeed:   opts.MaxSpeed,
		Pause:      opts.Pause,
		SubnetCell: opts.AreaMeters / 2,
	}, opts.Peers, func(i int) *rand.Rand { return k.Stream(fmt.Sprintf("mobility.%d", i)) })
	if err != nil {
		return nil, err
	}
	proc, err := churn.NewProcess(churn.Config{
		MeanUp:   opts.MeanUp,
		MeanDown: opts.MeanDown,
		Disabled: !opts.EnableChurn,
	}, opts.Peers, k)
	if err != nil {
		return nil, err
	}
	batteries := make([]*energy.Battery, opts.Peers)
	for i := range batteries {
		if batteries[i], err = energy.NewBattery(energy.DefaultConfig()); err != nil {
			return nil, err
		}
	}
	netCfg := netsim.DefaultConfig()
	netCfg.CommRange = opts.RadioRange
	network, err := netsim.New(netCfg, k, field, proc, batteries, stats.NewTraffic())
	if err != nil {
		return nil, err
	}
	reg, err := data.NewRegistry(opts.Peers)
	if err != nil {
		return nil, err
	}
	stores := make([]*cache.Store, opts.Peers)
	for i := range stores {
		if stores[i], err = cache.NewStore(opts.CacheCapacity); err != nil {
			return nil, err
		}
	}
	aud, err := consistency.NewAuditor(reg, opts.DeltaBound, 5*time.Second)
	if err != nil {
		return nil, err
	}
	lat := stats.NewLatency()
	chassis, err := node.NewChassis(node.DefaultConfig(), network, reg, stores, lat, aud)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(opts.Protocol, chassis, core.Telemetry{
		Switches: proc.Switches,
		Moves:    func(nd int) uint64 { return field.Node(nd).Moves() },
		CE:       func(nd int) float64 { return batteries[nd].CE(k.Now()) },
	})
	if err != nil {
		return nil, err
	}
	return &Simulation{
		k: k, net: network, reg: reg, stores: stores,
		chassis: chassis, eng: eng, proc: proc, lat: lat,
	}, nil
}

// ensureStarted lazily wires receivers and periodic protocol duties the
// first time the clock advances or an action is scheduled.
func (s *Simulation) ensureStarted() error {
	if s.started {
		return nil
	}
	if err := s.eng.Start(s.k); err != nil {
		return err
	}
	s.started = true
	return nil
}

// Warm places the current master copy of item into host's cache before
// (or during) the run — the placement substrate the paper assumes.
func (s *Simulation) Warm(host, item int) error {
	if err := s.checkHostItem(host, item); err != nil {
		return err
	}
	m, err := s.reg.Master(data.ItemID(item))
	if err != nil {
		return err
	}
	s.eng.Warm(s.k, host, m.Current())
	return nil
}

func (s *Simulation) checkHostItem(host, item int) error {
	if host < 0 || host >= s.net.Len() {
		return fmt.Errorf("rpcc: host %d out of range", host)
	}
	if item < 0 || item >= s.reg.Len() {
		return fmt.Errorf("rpcc: item %d out of range", item)
	}
	return nil
}

// At schedules fn to run at absolute virtual time t (which must not be in
// the past). Actions inside fn (Query, Update, Disconnect…) execute at
// that simulated instant.
func (s *Simulation) At(t time.Duration, fn func()) error {
	if err := s.ensureStarted(); err != nil {
		return err
	}
	_, err := s.k.At(t, "script", func(*sim.Kernel) { fn() })
	return err
}

// Query issues a query from host for item at the given level, now.
func (s *Simulation) Query(host, item int, level Level) error {
	if err := s.checkHostItem(host, item); err != nil {
		return err
	}
	if err := s.ensureStarted(); err != nil {
		return err
	}
	s.eng.OnQuery(s.k, host, data.ItemID(item), level)
	return nil
}

// Update commits a new version of host's own data item, now.
func (s *Simulation) Update(host int) error {
	if err := s.checkHostItem(host, 0); err != nil {
		return err
	}
	if err := s.ensureStarted(); err != nil {
		return err
	}
	s.eng.OnUpdate(s.k, host)
	return nil
}

// Disconnect forces host off the network (radio silence) until Reconnect.
func (s *Simulation) Disconnect(host int) error {
	if err := s.ensureStarted(); err != nil {
		return err
	}
	return s.proc.ForceState(s.k, host, churn.StateDisconnected)
}

// Reconnect brings a disconnected host back.
func (s *Simulation) Reconnect(host int) error {
	if err := s.ensureStarted(); err != nil {
		return err
	}
	return s.proc.ForceState(s.k, host, churn.StateConnected)
}

// RunFor advances the simulation clock by d, executing everything due.
func (s *Simulation) RunFor(d time.Duration) error {
	if err := s.ensureStarted(); err != nil {
		return err
	}
	s.k.RunUntil(s.k.Now() + d)
	return nil
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.k.Now() }

// Role describes host's protocol role for item: "none", "cache",
// "candidate" or "relay".
func (s *Simulation) Role(host, item int) string {
	return s.eng.Role(host, data.ItemID(item)).String()
}

// RelayCount returns the number of relay registrations across all source
// hosts.
func (s *Simulation) RelayCount() int { return s.eng.RelayCount() }

// Metrics is a snapshot of a Simulation's counters.
type Metrics struct {
	Issued, Answered, Failed uint64
	MeanLatency              time.Duration
	MaxLatency               time.Duration
	TotalTransmissions       uint64
	TotalBytes               uint64
	AuditViolations          uint64
	MeanStaleness            time.Duration
	RelayRegistrations       int
}

// Metrics returns the current snapshot.
func (s *Simulation) Metrics() Metrics {
	return Metrics{
		Issued:             s.chassis.Issued(),
		Answered:           s.chassis.Answered(),
		Failed:             s.chassis.Failed(),
		MeanLatency:        s.lat.Mean(),
		MaxLatency:         s.lat.Max(),
		TotalTransmissions: s.net.Traffic().TotalTx(),
		TotalBytes:         s.net.Traffic().TotalBytes(),
		AuditViolations:    s.chassis.AuditViolations(),
		MeanStaleness:      s.chassis.Auditor.MeanStaleness(),
		RelayRegistrations: s.eng.RelayCount(),
	}
}

// Version returns host's cached version of item and whether it caches it
// at all. For the item's owner it returns the master version.
func (s *Simulation) Version(host, item int) (uint64, bool) {
	if s.checkHostItem(host, item) != nil {
		return 0, false
	}
	if s.reg.Owner(data.ItemID(item)) == host {
		m, err := s.reg.Master(data.ItemID(item))
		if err != nil {
			return 0, false
		}
		return uint64(m.Current().Version), true
	}
	cp, ok := s.stores[host].Peek(data.ItemID(item))
	if !ok {
		return 0, false
	}
	return uint64(cp.Version), true
}
