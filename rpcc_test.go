package rpcc

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultScenarioMatchesTable1(t *testing.T) {
	s := DefaultScenario(StrategyRPCCSC, 1)
	if s.NPeers != 50 {
		t.Errorf("NPeers = %d, want 50", s.NPeers)
	}
	if s.AreaWidth != 1500 || s.AreaHeight != 1500 {
		t.Errorf("area = %gx%g, want 1500x1500", s.AreaWidth, s.AreaHeight)
	}
	if s.CacheNum != 10 {
		t.Errorf("C_Num = %d, want 10", s.CacheNum)
	}
	if s.CommRange != 250 {
		t.Errorf("C_Range = %g, want 250", s.CommRange)
	}
	if s.SimTime != 5*time.Hour {
		t.Errorf("T_Sim = %v, want 5h", s.SimTime)
	}
	if s.UpdateInterval != 2*time.Minute {
		t.Errorf("I_Update = %v, want 2m", s.UpdateInterval)
	}
	if s.QueryInterval != 20*time.Second {
		t.Errorf("I_Query = %v, want 20s", s.QueryInterval)
	}
	if s.BroadcastTTL != 8 {
		t.Errorf("TTL_BR = %d, want 8", s.BroadcastTTL)
	}
	if s.InvalidationTTL != 3 {
		t.Errorf("invalidation TTL = %d, want 3", s.InvalidationTTL)
	}
	if s.TTN != 2*time.Minute || s.TTR != 90*time.Second || s.TTP != 4*time.Minute {
		t.Errorf("timers = %v/%v/%v, want 2m/1.5m/4m", s.TTN, s.TTR, s.TTP)
	}
	if s.SwitchInterval != 5*time.Minute {
		t.Errorf("I_Switch = %v, want 5m", s.SwitchInterval)
	}
	if s.MuCAR != 0.15 || s.MuCS != 0.6 || s.MuCE != 0.6 || s.Omega != 0.2 {
		t.Errorf("thresholds = %g/%g/%g ω=%g, want 0.15/0.6/0.6 ω=0.2", s.MuCAR, s.MuCS, s.MuCE, s.Omega)
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	s := DefaultScenario(StrategyRPCCHY, 2)
	s.SimTime = 10 * time.Minute
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Answered == 0 {
		t.Fatal("no queries answered")
	}
	if r.TornAnswers != 0 || r.FutureAnswers != 0 {
		t.Fatalf("integrity violations: torn=%d future=%d", r.TornAnswers, r.FutureAnswers)
	}
	out := RenderResult(r)
	if !strings.Contains(out, "rpcc-hy") {
		t.Errorf("RenderResult missing strategy name:\n%s", out)
	}
}

func TestFiguresCoverPaper(t *testing.T) {
	ids := map[string]bool{}
	for _, spec := range Figures() {
		ids[spec.ID] = true
	}
	for _, want := range []string{"fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b"} {
		if !ids[want] {
			t.Errorf("Figures() missing %s", want)
		}
	}
}

func TestRunFigureSmall(t *testing.T) {
	specs := Figures()
	var spec FigureSpec
	for _, s := range specs {
		if s.ID == "fig7b" {
			spec = s
			break
		}
	}
	spec.Xs = spec.Xs[:2]                  // two points
	spec.Strategies = spec.Strategies[0:1] // pull only
	base := DefaultScenario(StrategyPull, 3)
	base.SimTime = 5 * time.Minute
	fig, err := RunFigure(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	table := RenderFigure(fig, spec)
	if !strings.Contains(table, "FIG7B") {
		t.Errorf("table missing figure id:\n%s", table)
	}
}

func TestSimulationScriptedScenario(t *testing.T) {
	s, err := NewSimulation(DefaultSimOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	// Host 3 caches host 0's item; host 0 updates it; a strong query from
	// host 3 must observe the new version.
	if err := s.Warm(3, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Version(3, 0); !ok || v != 0 {
		t.Fatalf("warmed version = %d,%v", v, ok)
	}
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Query(3, 0, LevelStrong); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Issued != 1 || m.Answered != 1 {
		t.Fatalf("metrics = %+v, want one answered query", m)
	}
	if m.AuditViolations != 0 {
		t.Fatalf("strong query served stale data: %+v", m)
	}
	if v, _ := s.Version(3, 0); v != 1 {
		t.Errorf("host 3 version after strong query = %d, want 1", v)
	}
}

func TestSimulationDisconnectReconnect(t *testing.T) {
	s, err := NewSimulation(DefaultSimOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warm(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Disconnect(5); err != nil {
		t.Fatal(err)
	}
	// The source updates twice while host 5 is off the network.
	s.Update(0)
	s.RunFor(3 * time.Minute)
	s.Update(0)
	s.RunFor(3 * time.Minute)
	if err := s.Reconnect(5); err != nil {
		t.Fatal(err)
	}
	// After reconnection a strong query repairs the stale copy.
	s.Query(5, 0, LevelStrong)
	s.RunFor(time.Minute)
	if v, ok := s.Version(5, 0); !ok || v != 2 {
		t.Errorf("version after reconnection repair = %d,%v, want 2", v, ok)
	}
	if s.Metrics().AuditViolations != 0 {
		t.Error("reconnected strong query served stale data")
	}
}

func TestSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(SimOptions{Peers: 1}); err == nil {
		t.Error("1-peer simulation accepted")
	}
	s, err := NewSimulation(DefaultSimOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warm(99, 0); err == nil {
		t.Error("out-of-range host accepted")
	}
	if err := s.Query(0, 99, LevelWeak); err == nil {
		t.Error("out-of-range item accepted")
	}
}

func TestSimulationAtSchedulesActions(t *testing.T) {
	s, err := NewSimulation(DefaultSimOptions(11))
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(2, 0)
	fired := false
	if err := s.At(2*time.Minute, func() {
		fired = true
		s.Query(2, 0, LevelWeak)
	}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Minute)
	if fired {
		t.Fatal("scheduled action fired early")
	}
	s.RunFor(90 * time.Second)
	if !fired {
		t.Fatal("scheduled action never fired")
	}
	if s.Metrics().Answered != 1 {
		t.Error("scheduled weak query unanswered")
	}
}

func TestReplicaSimulationConverges(t *testing.T) {
	opts := DefaultSimOptions(13)
	opts.Peers = 8
	s, err := NewReplicaSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(1, []int{0, 2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(4, 1, "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Converged(1)
	if !ok {
		t.Fatal("replicas did not converge")
	}
	if v.Data != "a" && v.Data != "b" {
		t.Fatalf("converged to unexpected value %q", v.Data)
	}
	if s.Transmissions() == 0 {
		t.Error("no transmissions recorded")
	}
}

func TestReplicaSimulationPartitionHeals(t *testing.T) {
	opts := DefaultSimOptions(19)
	opts.Peers = 8
	s, err := NewReplicaSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(1, []int{0, 3, 6}); err != nil {
		t.Fatal(err)
	}
	if err := s.Disconnect(6); err != nil {
		t.Fatal(err)
	}
	s.Write(0, 1, "missed")
	s.RunFor(30 * time.Second)
	if v, _ := s.Read(6, 1); v.Data == "missed" {
		t.Fatal("disconnected holder saw the write")
	}
	s.Reconnect(6)
	s.RunFor(5 * time.Minute)
	if v, _ := s.Read(6, 1); v.Data != "missed" {
		t.Fatalf("anti-entropy failed: holder 6 has %q", v.Data)
	}
}

func TestReplicaSimulationValidation(t *testing.T) {
	if _, err := NewReplicaSimulation(SimOptions{Peers: 1}); err == nil {
		t.Error("1-peer replica simulation accepted")
	}
	s, err := NewReplicaSimulation(DefaultSimOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(1, []int{0}); err == nil {
		t.Error("single-holder replica accepted")
	}
	if err := s.Register(1, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(5, 1, "x"); err == nil {
		t.Error("non-holder write accepted")
	}
}
